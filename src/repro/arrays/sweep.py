"""Column-sweep kernel registry: packed programs and fused mesh megakernels.

The mesh column sweep is the innermost hot loop of every Monte Carlo
trial, yield sweep, drift timeline, and noise-aware training step: apply
``~n`` columns of 2x2 MZI blocks to a (batch of) ``n x n`` matrices.  The
reference implementation (:func:`repro.arrays.kernels.apply_mzi_blocks`)
is a Python loop over columns, each iteration doing two fancy-indexed
gathers and two scatters that allocate fresh temporaries.

This module makes the sweep pluggable:

* :class:`ColumnProgram` — the per-mesh structure "compiled" once into
  packed flat index arrays (column-sorted top/bottom row indices plus
  column boundary offsets), replacing the per-call list-of-triples
  ``groups`` structure.  Programs are built by the mesh, converted per
  array backend once, and cached in the existing per-backend mesh cache.
* :class:`SweepKernel` implementations behind a small registry:

  - ``looped`` — the reference sweep (bit-exact legacy arithmetic).
  - ``fused``  — hand-fused out-buffer sweep: three elementwise out-ops
    per column through preallocated capacity-tracked scratch buffers
    (zero per-column allocation, exact same float op sequence as
    ``looped``), cache-blocked over the batch axis on host namespaces.
  - ``numba``  — optional prange-jitted host kernel
    (:mod:`repro.arrays.numba_sweep`); registered only when importable.
  - ``cupy_raw`` — a CUDA ``RawKernel`` replaying the whole sweep as one
    device launch per batch chunk (:mod:`repro.arrays.cupy_sweep`), with
    graceful fallback to ``fused`` when compilation is unavailable.

* :func:`apply_column_sweep` — the runtime dispatch used by
  :meth:`repro.mesh.mesh.MZIMesh.matrix_batch`: pick the best available
  kernel for the active backend (or honor the ``REPRO_SWEEP_KERNEL``
  environment override) and run it.

Every kernel must be *conformant*: bit-identical to ``looped`` on host
and mock backends (same ufunc sequence), allclose on CuPy (same math,
device rounding).  The registry conformance suite in ``tests/arrays``
enforces this for every registered kernel.

Like :mod:`repro.arrays.kernels`, this module never imports NumPy: all
array work goes through the backend's ``xp`` namespace or operators, so
one implementation serves every registered backend.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, NamedTuple, Optional, Tuple

from ..exceptions import ConfigurationError
from ..observability.dispatch import active_collector, active_feedback
from ..observability.recorder import perf_seconds

__all__ = [
    "ColumnProgram",
    "SweepKernel",
    "SweepShape",
    "LoopedSweepKernel",
    "FusedSweepKernel",
    "SWEEP_KERNEL_ENV",
    "register_sweep_kernel",
    "get_sweep_kernel",
    "sweep_kernel_names",
    "available_sweep_kernels",
    "select_sweep_kernel",
    "apply_column_sweep",
]

#: Environment override for kernel selection (exact registry name).
SWEEP_KERNEL_ENV = "REPRO_SWEEP_KERNEL"

#: Precomputed index tuples selecting a column block's top/bottom rows of
#: the ``(..., m, 2, n)`` pair view (keepdims so components broadcast).
_TOP = (Ellipsis, slice(0, 1), slice(None))
_BOTTOM = (Ellipsis, slice(1, 2), slice(None))

#: Matrix elements per cache block of the fused host sweep: one block of
#: stacked matrices (~256 KiB complex128) stays L2-resident across *all*
#: columns, so the batch streams through memory once per sweep instead of
#: once per column.
_HOST_BLOCK_ELEMENTS = 16384


@dataclass(frozen=True)
class ColumnProgram:
    """Packed flat-index form of a mesh's column-sweep structure.

    Built once per mesh (host arrays), converted at most once per array
    backend via :meth:`to_backend`, and cached by the mesh — no index
    rebuilding on the per-call hot path.  All index arrays are in
    *column-sorted propagation order* (the mesh's stable column
    permutation), so per-column work is a contiguous slice.

    Attributes
    ----------
    n:
        Matrix dimension (number of modes).
    perm:
        ``(M,)`` column-sorted propagation permutation over devices; the
        caller gathers each block-component array by it once per sweep.
    top, bottom:
        ``(M,)`` matrix row indices of each device's upper/lower mode, in
        column-sorted order.
    rows:
        ``(2M,)`` packed gather/scatter row map: for each column ``c``
        spanning ``[s, e)`` the block ``rows[2s:2e]`` interleaves the
        column's mode pairs — ``t0, b0, t1, b1, ...`` — one fancy gather
        and one fancy scatter per column instead of two of each.
    starts:
        ``(C + 1,)`` column boundary offsets into ``perm``/``top``/
        ``bottom`` (host array; kernels that need it on device stash a
        converted copy in :attr:`cache`).
    spans:
        ``starts`` as plain ``(start, stop)`` int pairs — a tuple so the
        per-column loop never converts array scalars.
    bases:
        One entry per column: the first matrix row of the column's
        contiguous row block when its interleaved rows are exactly
        ``base, base + 1, ..., base + 2m - 1`` (every Clements column;
        most Reck columns), else ``None``.  Conforming columns skip the
        gather/scatter entirely — the fused kernel updates a reshaped
        *view* of the matrices and writes back with one contiguous copy.
    cache:
        Kernel-private per-program scratch (contiguous index copies,
        compiled launch parameters, ...), keyed by kernel name.
    """

    n: int
    perm: object
    top: object
    bottom: object
    rows: object
    starts: object
    spans: Tuple[Tuple[int, int], ...]
    bases: Tuple[Optional[int], ...]
    cache: Dict[object, object] = field(default_factory=dict, repr=False, compare=False)

    @property
    def num_devices(self) -> int:
        return self.spans[-1][1] if self.spans else 0

    @property
    def num_columns(self) -> int:
        return len(self.spans)

    @property
    def max_column_devices(self) -> int:
        """Widest column (devices), sizing the fused scratch buffers."""
        return max((stop - start for start, stop in self.spans), default=0)

    def to_backend(self, backend) -> "ColumnProgram":
        """This program with its gather/scatter index arrays on ``backend``.

        Host backends index with the original arrays; device namespaces
        index with their own array type.  ``starts``/``spans`` stay host
        side (pure scheduling metadata).  The mesh caches the result per
        backend name, so conversion happens at most once per backend.
        """
        if backend.is_host:
            return self
        return ColumnProgram(
            n=self.n,
            perm=backend.asarray(self.perm),
            top=backend.asarray(self.top),
            bottom=backend.asarray(self.bottom),
            rows=backend.asarray(self.rows),
            starts=self.starts,
            spans=self.spans,
            bases=self.bases,
        )


class SweepShape(NamedTuple):
    """Shape hint for kernel selection: one sweep call's problem size.

    Callers that know their shape (``MZIMesh.matrix_batch`` knows ``n``,
    the realization batch, the column count and the mesh scheme) pass
    this to :func:`select_sweep_kernel` so the autotuned cost model
    (:mod:`repro.tuning`) can pick the cheapest kernel for *this* shape
    instead of the static preference order.  ``scheme`` is optional —
    it only narrows which calibration points the model interpolates.
    """

    n: int
    batch: int
    columns: int
    scheme: Optional[str] = None


class SweepKernel:
    """One strategy for executing a packed column sweep.

    Subclasses implement :meth:`run`; ``matrices`` is ``(..., n, n)``,
    ``components`` the four ``(..., M)`` block component arrays *already
    gathered into column-sorted order* (by ``program.perm``), and
    ``program`` a :class:`ColumnProgram` already converted for
    ``backend``.  The sweep updates ``matrices`` in place and must be
    conformant with the ``looped`` reference (bit-identical on host/mock
    namespaces, allclose on CuPy).
    """

    #: Registry name (also the ``REPRO_SWEEP_KERNEL`` override value).
    name: str = ""

    #: Whether the kernel manages its own lead-axis blocking.  Callers
    #: (``MZIMesh.matrix_batch``) hand such kernels the *whole* batch in
    #: one call instead of chunking externally for cache residency — the
    #: kernel blocks (or launches) however suits its execution model.
    blocks_internally: bool = False

    #: Memoized ``(available, reason)`` probe result; availability cannot
    #: change mid-process (deps don't materialize after import), so the
    #: probe — which may import numba or touch the CUDA driver — runs at
    #: most once per kernel instance.
    _availability: Optional[Tuple[bool, Optional[str]]] = None

    def _probe(self) -> Tuple[bool, Optional[str]]:
        """One-shot availability probe: ``(available, unavailable_reason)``.

        Subclasses with real dependencies override *this* (not
        :meth:`available`) so the memoization in :meth:`availability`
        covers every probe path uniformly.
        """
        return True, None

    def availability(self) -> Tuple[bool, Optional[str]]:
        """Cached ``(available, reason)`` — the probe runs at most once."""
        if self._availability is None:
            ok, reason = self._probe()
            self._availability = (ok, reason if not ok else None)
        return self._availability

    def refresh_availability(self) -> None:
        """Drop the memoized probe (tests simulating changed environments)."""
        self._availability = None

    def available(self) -> bool:
        """Whether the kernel can run in this process (deps importable)."""
        return self.availability()[0]

    def unavailable_reason(self) -> Optional[str]:
        """Why :meth:`available` is ``False``, or ``None`` when it is not.

        Diagnostics (``spnn-repro info``) surface this so a user can tell
        a missing dependency from a broken one without reading source.
        """
        return self.availability()[1]

    def supports(self, backend) -> bool:
        """Whether the kernel can serve ``backend``'s arrays."""
        return True

    def run(self, backend, matrices, components, program: ColumnProgram) -> None:
        raise NotImplementedError

    def __call__(self, backend, matrices, components, program: ColumnProgram) -> None:
        self.run(backend, matrices, components, program)

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"{type(self).__name__}(name={self.name!r})"


class LoopedSweepKernel(SweepKernel):
    """The legacy reference sweep: per-column gathers with fresh temporaries.

    Delegates to :func:`repro.arrays.kernels.apply_mzi_blocks` — the
    byte-for-byte historical arithmetic every other kernel is measured
    against, and the denominator of the ``mesh_megakernel`` benchmark.
    """

    name = "looped"

    def run(self, backend, matrices, components, program: ColumnProgram) -> None:
        from .kernels import apply_mzi_blocks

        apply_mzi_blocks(matrices, components, program)


class FusedSweepKernel(SweepKernel):
    """Hand-fused out-buffer sweep: zero per-column allocation.

    Per column the reference does two fancy gathers, four multiplies, two
    adds and two scatters, every one allocating a fresh temporary.  This
    kernel collapses that to (at most) four namespace calls per column:

    * The four block components are packed once per sweep into two
      ``(..., M, 2)`` stacks — ``CA = [b00 | b10]``, ``CB = [b01 | b11]``
      — so one broadcast multiply produces *both* row updates of every
      device: ``new = CA * top + CB * bottom`` evaluated as two
      multiplies and one add into preallocated contiguous scratch.
    * Columns whose interleaved mode rows form a contiguous block
      (``program.bases``; every Clements column) need no gather at all:
      the update reads a reshaped ``(..., m, 2, n)`` *view* of the
      matrices and writes back with a single block copy.  Non-conforming
      columns (some Reck diagonals) gather/scatter through the packed
      ``rows`` map with one ``take`` and one fancy assignment.

    On host namespaces the kernel additionally blocks the leading batch
    axis so one block's matrices (and scratch) stay cache-resident across
    *all* columns of the sweep — the whole batch streams through memory
    once instead of once per column.  Batch rows are independent and the
    per-row arithmetic is unchanged, so blocking never changes a value;
    at Monte Carlo scale (thousands of stacked realizations) it is where
    most of the megakernel speedup comes from.

    The per-element float op sequence — a component multiply per matrix
    element and one add — is exactly the reference's (broadcast multiply
    is elementwise; no reductions anywhere), so results are bit-identical
    on any namespace where ufunc-with-``out`` equals ufunc-then-copy
    (all of ours).  Scratch lives per ``(backend, role, dtype)`` in the
    kernel instance, capacity-tracked like the workspace arena; processes
    and backends never share buffers, and the sweep never reads a scratch
    cell it did not just write.
    """

    name = "fused"
    blocks_internally = True

    def __init__(self) -> None:
        self._scratch: Dict[tuple, object] = {}
        # Per-(program, backend, shape, dtype) column plans.  Keyed by
        # id(program) with a weakref guard against id reuse; kept on the
        # kernel instance (not in ``program.cache``) so pickling a mesh to
        # worker processes never ships megabytes of scratch views.
        self._plans: Dict[int, tuple] = {}
        # Whether the backend's take() accepts mode= (NumPy does; CuPy
        # does not).  mode="clip" matters: NumPy's take-with-out buffers
        # through a temporary under the default mode="raise", which costs
        # more than the gather itself.  Program indices are mesh-generated
        # and always in bounds, so clip never changes a value.
        self._take_accepts_mode: Dict[str, bool] = {}

    def _take(self, xp, backend_name: str, source, rows, out) -> None:
        if self._take_accepts_mode.get(backend_name, True):
            try:
                xp.take(source, rows, axis=-2, out=out, mode="clip")
                return
            except TypeError:
                self._take_accepts_mode[backend_name] = False
        xp.take(source, rows, axis=-2, out=out)

    def _buffer(self, backend, role: str, shape, dtype):
        """Capacity-tracked scratch view of ``shape`` for ``role``."""
        size = 1
        for extent in shape:
            size *= int(extent)
        key = (backend.name, role, str(dtype))
        flat = self._scratch.get(key)
        if flat is None or flat.shape[0] < size:
            flat = backend.empty((size,), dtype)
            self._scratch[key] = flat
        return flat[:size].reshape(shape)

    def _plan(self, backend, program: ColumnProgram, lead, comp_lead, dtype):
        """The per-column execution plan for one (program, shape) pairing.

        Each entry packs everything the hot loop needs per column as
        precomputed index tuples and preallocated scratch views: only the
        matrix-block view itself must be rebuilt per call (the matrices
        array changes identity between calls).  Scratch views are written
        before they are read within every sweep, so plans stay correct
        even if a later, larger sweep reallocates a backing.
        """
        entry = self._plans.get(id(program))
        if entry is not None:
            ref, plans = entry
            if ref() is not program:
                entry = None
        if entry is None:
            plans = {}
            self._plans[id(program)] = (weakref.ref(program), plans)
        key = (backend.name, lead, comp_lead, str(dtype))
        plan = plans.get(key)
        if plan is not None:
            return plan
        n = program.n
        rows = program.rows
        # Warm the shared backings to the widest column up front; the
        # per-column views below then never reallocate.  Columns reuse
        # one backing per role (each view is fully written before it is
        # read within its own column).
        width = program.max_column_devices
        self._buffer(backend, "updated", lead + (width, 2, n), dtype)
        self._buffer(backend, "scratch", lead + (width, 2, n), dtype)
        if any(base is None for base in program.bases):
            self._buffer(backend, "gathered", lead + (width, 2, n), dtype)
        plan = []
        for (start, stop), base in zip(program.spans, program.bases):
            m = stop - start
            xshape = lead + (m, 2, n)
            ca_index = (Ellipsis, slice(start, stop), slice(None), None)
            new = self._buffer(backend, "updated", xshape, dtype)
            tmp = self._buffer(backend, "scratch", xshape, dtype)
            if base is None:
                block_rows = rows[2 * start : 2 * stop]
                block = self._buffer(backend, "gathered", lead + (2 * m, n), dtype)
                x = block.reshape(xshape)
                plan.append((None, None, ca_index, block_rows, block, x, new, tmp))
            else:
                plan.append(((base, base + 2 * m), xshape, ca_index, None, None, None, new, tmp))
        plan = tuple(plan)
        plans[key] = plan
        return plan

    def run(self, backend, matrices, components, program: ColumnProgram) -> None:
        b00, b01, b10, b11 = components
        lead = tuple(matrices.shape[:-2])
        comp_lead = tuple(b00.shape[:-1])
        if program.num_devices == 0:
            return
        dtype = matrices.dtype
        # Component stacks: CA[..., i, 0] = b00[..., i], CA[..., i, 1] =
        # b10[..., i] (likewise CB with b01/b11), so the per-column views
        # below broadcast one multiply over both output rows of a device.
        ca = self._buffer(backend, "ca", comp_lead + (program.num_devices, 2), dtype)
        cb = self._buffer(backend, "cb", comp_lead + (program.num_devices, 2), dtype)
        ca[..., 0] = b00
        ca[..., 1] = b10
        cb[..., 0] = b01
        cb[..., 1] = b11
        block = self._lead_block(backend, lead, comp_lead, program.n)
        if block is None:
            self._sweep(backend, matrices, ca, cb, program, lead, comp_lead, dtype)
            return
        for start in range(0, lead[0], block):
            stop = min(start + block, lead[0])
            self._sweep(
                backend,
                matrices[start:stop],
                ca[start:stop],
                cb[start:stop],
                program,
                (stop - start,),
                (stop - start,),
                dtype,
            )

    @staticmethod
    def _lead_block(backend, lead, comp_lead, n: int):
        """Batch rows per cache block, or ``None`` to sweep in one pass.

        Host only (a device wants one launch per column, not one per
        block), and only for the stacked ``(B, n, n)`` layout with fully
        batched components — broadcasting component stacks cannot be
        sliced along the batch axis.
        """
        if not backend.is_host or len(lead) != 1 or comp_lead != lead:
            return None
        block = max(1, _HOST_BLOCK_ELEMENTS // max(1, n * n))
        return block if lead[0] > block else None

    def _sweep(self, backend, matrices, ca, cb, program, lead, comp_lead, dtype) -> None:
        xp = backend.xp
        multiply = xp.multiply
        add = xp.add
        name = backend.name
        for span, xshape, ca_index, block_rows, block, gx, new, tmp in self._plan(
            backend, program, lead, comp_lead, dtype
        ):
            if span is not None:
                # Contiguous row block: read through a reshaped view and
                # write the final add straight back into the matrices —
                # the add reads only scratch, so no aliasing hazard.
                x = matrices[..., span[0] : span[1], :].reshape(xshape)
                multiply(ca[ca_index], x[_TOP], out=new)
                multiply(cb[ca_index], x[_BOTTOM], out=tmp)
                add(new, tmp, out=x)
            else:
                # Non-conforming column: gather the interleaved rows into
                # scratch, update in place there, scatter back once.
                self._take(xp, name, matrices, block_rows, block)
                multiply(ca[ca_index], gx[_TOP], out=new)
                multiply(cb[ca_index], gx[_BOTTOM], out=tmp)
                add(new, tmp, out=gx)
                matrices[..., block_rows, :] = block


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #

_KERNELS: Dict[str, SweepKernel] = {}

#: Selection preference when no override is set; filtered by
#: ``available()``/``supports()`` per backend, so e.g. ``cupy_raw`` only
#: ever serves the CuPy backend and ``numba`` only host arrays.
_DEFAULT_ORDER: Tuple[str, ...] = ("cupy_raw", "numba", "fused", "looped")


def register_sweep_kernel(kernel: SweepKernel) -> SweepKernel:
    """Add ``kernel`` to the registry (replacing any same-named entry)."""
    if not kernel.name:
        raise ConfigurationError("sweep kernels must carry a non-empty name")
    _KERNELS[kernel.name] = kernel
    return kernel


def get_sweep_kernel(name: str) -> SweepKernel:
    """Registered kernel by exact name."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown sweep kernel {name!r}; registered: {sweep_kernel_names()}"
        ) from None


def sweep_kernel_names() -> Tuple[str, ...]:
    """Names of every registered kernel (available or not)."""
    return tuple(_KERNELS)


def available_sweep_kernels(backend=None) -> Tuple[str, ...]:
    """Names of the kernels that can run now (optionally for ``backend``)."""
    return tuple(
        name
        for name, kernel in _KERNELS.items()
        if kernel.available() and (backend is None or kernel.supports(backend))
    )


def select_sweep_kernel(backend, shape: Optional[SweepShape] = None) -> SweepKernel:
    """The kernel serving ``backend``: env override or best available.

    ``REPRO_SWEEP_KERNEL`` names a registered kernel and fails loudly when
    it is unknown, unavailable (dependency missing) or unsupported on the
    active backend — a silent fallback would hide a misconfigured run.
    Without the override, the first available kernel in the preference
    order ``cupy_raw > numba > fused > looped`` that supports the backend
    wins; ``fused`` is the universal default, ``looped`` the safety net.

    With a :class:`SweepShape` hint the autotuned cost model
    (:mod:`repro.tuning.policy`) may reorder *within* the available set
    — it picks the kernel its per-machine calibration predicts cheapest
    for this shape.  The hint never widens the candidate set (only
    available+supported kernels compete), the env pin always wins over
    it, and ``REPRO_AUTOTUNE=off`` restores the static order exactly.
    Every candidate is conformant with the ``looped`` reference, so the
    choice affects time, never results.
    """
    override = os.environ.get(SWEEP_KERNEL_ENV)
    if override:
        kernel = get_sweep_kernel(override)
        if not kernel.available():
            raise ConfigurationError(
                f"sweep kernel {override!r} ({SWEEP_KERNEL_ENV}) is not available "
                f"in this environment; available: {available_sweep_kernels()}"
            )
        if not kernel.supports(backend):
            raise ConfigurationError(
                f"sweep kernel {override!r} ({SWEEP_KERNEL_ENV}) does not support "
                f"array backend {backend.name!r}; "
                f"available here: {available_sweep_kernels(backend)}"
            )
        return kernel
    candidates = tuple(
        name
        for name in _DEFAULT_ORDER
        if name in _KERNELS
        and _KERNELS[name].available()
        and _KERNELS[name].supports(backend)
    )
    if not candidates:
        raise ConfigurationError(
            f"no sweep kernel supports array backend {backend.name!r}"
        )  # pragma: no cover - looped supports everything
    if shape is not None and len(candidates) > 1:
        from ..tuning.policy import choose_kernel_name

        chosen = choose_kernel_name(backend, shape, candidates)
        if chosen is not None:
            return _KERNELS[chosen]
    return _KERNELS[candidates[0]]


def apply_column_sweep(
    backend,
    matrices,
    components,
    program: ColumnProgram,
    kernel: Optional[object] = None,
) -> None:
    """Run the column sweep on ``matrices`` in place with the best kernel.

    ``components`` must already be gathered into column-sorted order (by
    ``program.perm``) and ``program`` already converted for ``backend``
    (:meth:`ColumnProgram.to_backend`); the mesh does both once per call
    and per backend respectively.  ``kernel`` optionally pins a registry
    name (or passes a :class:`SweepKernel` instance through), otherwise
    :func:`select_sweep_kernel` decides.

    When a dispatch collector is installed
    (:mod:`repro.observability.dispatch`), each call records
    ``(kernel, backend, n, batch, columns, seconds)`` — shapes and wall
    time only, never the array contents, so recording cannot perturb
    results.  The same timing feeds the autotune feedback sink when a
    cost table is active, refining its observed layer online.  With
    neither installed the instrumentation is two module-global reads per
    call.
    """
    batch = 1
    for extent in matrices.shape[:-2]:
        batch *= int(extent)
    if kernel is None:
        selected = select_sweep_kernel(
            backend, SweepShape(program.n, batch, program.num_columns)
        )
    elif isinstance(kernel, SweepKernel):
        selected = kernel
    else:
        selected = get_sweep_kernel(kernel)
    collector = active_collector()
    sink = active_feedback()
    if collector is None and sink is None:
        selected(backend, matrices, components, program)
        return
    started = perf_seconds()
    selected(backend, matrices, components, program)
    elapsed = perf_seconds() - started
    if collector is not None:
        collector.record(
            selected.name, backend.name, program.n, batch, program.num_columns, elapsed
        )
    if sink is not None:
        sink(backend.name, selected.name, program.n, batch, program.num_columns, elapsed)


register_sweep_kernel(LoopedSweepKernel())
register_sweep_kernel(FusedSweepKernel())


def _register_optional_kernels() -> None:
    """Register the numba and cupy kernels (import-guarded wrappers).

    The wrapper modules themselves import their heavy dependency lazily
    and report ``available() == False`` when it is missing, so merely
    registering them is always safe — selection skips unavailable
    kernels and the env override fails with a clear message.
    """
    from .cupy_sweep import CupyRawSweepKernel
    from .numba_sweep import NumbaSweepKernel

    register_sweep_kernel(NumbaSweepKernel())
    register_sweep_kernel(CupyRawSweepKernel())
