"""A strict mock device namespace: NumPy semantics, CuPy discipline.

:class:`MockArrayBackend` ("``mock_device``") executes every kernel with
NumPy under the hood — so its results are **bit-identical** to the
reference backend — while enforcing the host/device hygiene of a real
device library:

* a :class:`MockArray` refuses implicit conversion to a host ndarray
  (``__array__`` raises), so any stray ``np.`` call on a device array —
  the exact bug class this backend exists to catch — fails loudly instead
  of silently computing on the host;
* the namespace's functions reject plain host ndarrays as operands
  (mirroring CuPy, which raises on ``cupy.multiply(device, host)``), so a
  kernel that forgets to move an operand across the seam is caught on
  CPU-only CI;
* explicit transfers (``xp.asarray`` in, :meth:`MockArrayBackend.to_host`
  out) are the only doors between the two worlds.

Because the underlying arithmetic is NumPy's, the conformance suite can
assert *exact* equality between the reference backend and this one — a
stronger check than the ``allclose`` contract a real GPU gets.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .namespace import ArrayBackend

__all__ = ["MockArray", "MockNamespace", "MockArrayBackend"]

#: Functions allowed to receive host ndarrays (they ARE the transfer door).
_TRANSFER_FUNCTIONS = frozenset({"asarray", "array", "ascontiguousarray"})


def _reject_host(value, name: str):
    if isinstance(value, np.ndarray) and value.ndim > 0:
        raise TypeError(
            f"mock device namespace: {name} received a host numpy array; "
            "move it across the seam explicitly with xp.asarray(...) "
            "(a real GPU namespace would raise here too)"
        )
    return value


def _unwrap(value, name: str, strict: bool):
    if isinstance(value, MockArray):
        return value._data
    if isinstance(value, (tuple, list)):
        return type(value)(_unwrap(item, name, strict) for item in value)
    return _reject_host(value, name) if strict else value


def _wrap(value):
    if isinstance(value, np.ndarray):
        return MockArray(value)
    if isinstance(value, tuple):
        return tuple(_wrap(item) for item in value)
    return value


class MockArray:
    """Host-memory array that behaves like (and is as strict as) a device array."""

    __slots__ = ("_data",)
    #: Opting out of the ufunc protocol makes every direct NumPy ufunc call
    #: on a MockArray raise — and makes reflected operators work against
    #: host scalars.
    __array_ufunc__ = None

    def __init__(self, data: np.ndarray):
        self._data = np.asarray(data)

    # -- the tripwire -------------------------------------------------- #
    def __array__(self, *args, **kwargs):
        raise TypeError(
            "implicit host transfer of a mock device array; use the backend's "
            "to_host(...) (this is exactly how a stray np.* call on a device "
            "array fails on a real GPU)"
        )

    # -- metadata ------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._data.shape

    @property
    def dtype(self):
        return self._data.dtype

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    @property
    def T(self) -> "MockArray":
        return MockArray(self._data.T)

    # -- real/imag as writable device views ---------------------------- #
    @property
    def real(self) -> "MockArray":
        return MockArray(self._data.real)

    @real.setter
    def real(self, value) -> None:
        self._data.real = _unwrap(value, "real", strict=True)

    @property
    def imag(self) -> "MockArray":
        return MockArray(self._data.imag)

    @imag.setter
    def imag(self, value) -> None:
        self._data.imag = _unwrap(value, "imag", strict=True)

    # -- indexing ------------------------------------------------------ #
    def __getitem__(self, key):
        return _wrap(self._data[_unwrap(key, "__getitem__", strict=False)])

    def __setitem__(self, key, value) -> None:
        # Assignment from a host array is allowed (CuPy's __setitem__ also
        # accepts numpy values — it is an explicit elementwise transfer).
        self._data[_unwrap(key, "__setitem__", strict=False)] = _unwrap(
            value, "__setitem__", strict=False
        )

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __float__(self) -> float:
        return float(self._data)

    def __int__(self) -> int:
        return int(self._data)

    # -- operators (strict: host ndarrays are rejected) ----------------- #
    def _binary(self, other, op, name):
        return _wrap(op(self._data, _unwrap(other, name, strict=True)))

    def _rbinary(self, other, op, name):
        return _wrap(op(_unwrap(other, name, strict=True), self._data))

    def __add__(self, other):
        return self._binary(other, lambda a, b: a + b, "__add__")

    def __radd__(self, other):
        return self._rbinary(other, lambda a, b: a + b, "__radd__")

    def __sub__(self, other):
        return self._binary(other, lambda a, b: a - b, "__sub__")

    def __rsub__(self, other):
        return self._rbinary(other, lambda a, b: a - b, "__rsub__")

    def __mul__(self, other):
        return self._binary(other, lambda a, b: a * b, "__mul__")

    def __rmul__(self, other):
        return self._rbinary(other, lambda a, b: a * b, "__rmul__")

    def __truediv__(self, other):
        return self._binary(other, lambda a, b: a / b, "__truediv__")

    def __rtruediv__(self, other):
        return self._rbinary(other, lambda a, b: a / b, "__rtruediv__")

    def __pow__(self, other):
        return self._binary(other, lambda a, b: a**b, "__pow__")

    def __matmul__(self, other):
        return self._binary(other, lambda a, b: a @ b, "__matmul__")

    def __rmatmul__(self, other):
        return self._rbinary(other, lambda a, b: a @ b, "__rmatmul__")

    def __neg__(self):
        return _wrap(-self._data)

    def __gt__(self, other):
        return self._binary(other, lambda a, b: a > b, "__gt__")

    def __ge__(self, other):
        return self._binary(other, lambda a, b: a >= b, "__ge__")

    def __lt__(self, other):
        return self._binary(other, lambda a, b: a < b, "__lt__")

    def __le__(self, other):
        return self._binary(other, lambda a, b: a <= b, "__le__")

    def __eq__(self, other):  # type: ignore[override]
        return self._binary(other, lambda a, b: a == b, "__eq__")

    def __ne__(self, other):  # type: ignore[override]
        return self._binary(other, lambda a, b: a != b, "__ne__")

    __hash__ = None  # type: ignore[assignment]

    # in-place variants mutate the backing buffer (workspace reuse).
    def __iadd__(self, other):
        self._data += _unwrap(other, "__iadd__", strict=True)
        return self

    def __isub__(self, other):
        self._data -= _unwrap(other, "__isub__", strict=True)
        return self

    def __imul__(self, other):
        self._data *= _unwrap(other, "__imul__", strict=True)
        return self

    def __itruediv__(self, other):
        self._data /= _unwrap(other, "__itruediv__", strict=True)
        return self

    # -- method delegation (any(), copy(), reshape(), astype(), ...) ---- #
    def __getattr__(self, name: str):
        if name.startswith("__"):
            # Never leak NumPy's protocol probes (__array_interface__,
            # __array_struct__, ...) from the wrapped array — that would
            # hand raw buffer access to host NumPy and silently bypass the
            # implicit-transfer tripwire.
            raise AttributeError(name)
        attr = getattr(self._data, name)
        if callable(attr):
            def method(*args, **kwargs):
                args = tuple(_unwrap(a, name, strict=False) for a in args)
                kwargs = {k: _unwrap(v, name, strict=False) for k, v in kwargs.items()}
                return _wrap(attr(*args, **kwargs))

            return method
        return _wrap(attr)

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"MockArray({self._data!r})"


class MockNamespace:
    """Module-like ``xp`` that delegates to NumPy through the strict wrapper.

    Function attributes unwrap :class:`MockArray` operands (rejecting plain
    host ndarrays, as a device library would), call the NumPy function, and
    wrap ndarray results; non-callable attributes (dtypes, ``pi``,
    ``newaxis``) pass through untouched.
    """

    def asarray(self, value, dtype=None):
        if isinstance(value, MockArray):
            data = np.asarray(value._data, dtype=dtype)
            return value if data is value._data else MockArray(data)
        return MockArray(np.asarray(value, dtype=dtype))

    array = ascontiguousarray = asarray

    def __getattr__(self, name: str):
        attr = getattr(np, name)
        if not callable(attr) or isinstance(attr, type):
            return attr

        strict = name not in _TRANSFER_FUNCTIONS

        def function(*args, **kwargs):
            args = tuple(_unwrap(a, name, strict=strict) for a in args)
            kwargs = {k: _unwrap(v, name, strict=strict) for k, v in kwargs.items()}
            return _wrap(attr(*args, **kwargs))

        function.__name__ = name
        return function

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return "MockNamespace(numpy)"


class MockArrayBackend(ArrayBackend):
    """The ``mock_device`` backend: strict device semantics, NumPy arithmetic."""

    name = "mock_device"
    is_host = False

    def __init__(self) -> None:
        super().__init__()
        self._namespace = MockNamespace()

    @classmethod
    def available(cls) -> bool:
        return True

    @property
    def xp(self) -> MockNamespace:
        return self._namespace

    def owns(self, value: object) -> bool:
        return isinstance(value, MockArray)

    def asarray(self, value, dtype=None):
        return self._namespace.asarray(value, dtype=dtype)

    def to_host(self, value) -> np.ndarray:
        if isinstance(value, MockArray):
            return np.asarray(value._data)
        return np.asarray(value)
