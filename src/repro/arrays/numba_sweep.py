"""Optional numba-jitted column-sweep kernel (host arrays only).

Registered with the sweep-kernel registry unconditionally but
``available()`` only when :mod:`numba` imports — the container images
used in CI do not ship it, so every consumer must (and does) degrade
gracefully to the ``fused`` kernel.

The jitted sweep runs the exact same per-element float operations as the
reference (``b00*top + b01*bottom`` / ``b10*top + b11*bottom`` per mode
pair), prange-parallel over the batch axis only — columns stay
sequential (they carry the propagation-order data dependence) and
devices within a column touch disjoint rows, so the loop nest is
race-free.  Complex multiply/add lower to the same non-fused scalar
arithmetic NumPy's ufuncs execute, so results are expected bit-identical
on the host backend; the registry conformance suite asserts exact
equality whenever numba is importable.

This module intentionally lives *outside* the numpy-seam lint lists: it
is host-only accelerator glue that needs direct ``numpy`` (and numba)
imports, never device namespaces.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .sweep import ColumnProgram, SweepKernel

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the CI/container default
    HAVE_NUMBA = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        raise RuntimeError("numba is not installed")

    prange = range  # type: ignore[assignment]


__all__ = ["HAVE_NUMBA", "NumbaSweepKernel"]


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @njit(parallel=True, cache=True)
    def _sweep_jit(matrices, b00, b01, b10, b11, top, bottom, starts):
        batch = matrices.shape[0]
        n = matrices.shape[2]
        columns = starts.shape[0] - 1
        for index in prange(batch):
            for column in range(columns):
                for device in range(starts[column], starts[column + 1]):
                    top_row = top[device]
                    bottom_row = bottom[device]
                    c00 = b00[index, device]
                    c01 = b01[index, device]
                    c10 = b10[index, device]
                    c11 = b11[index, device]
                    for j in range(n):
                        t = matrices[index, top_row, j]
                        b = matrices[index, bottom_row, j]
                        matrices[index, top_row, j] = c00 * t + c01 * b
                        matrices[index, bottom_row, j] = c10 * t + c11 * b


class NumbaSweepKernel(SweepKernel):
    """prange-over-batch jitted sweep; host backend only, bit-exact."""

    name = "numba"
    #: prange parallelizes over the whole batch axis — external chunking
    #: would only shrink the parallel grain, so callers hand it everything.
    blocks_internally = True

    def _probe(self):
        return HAVE_NUMBA, None if HAVE_NUMBA else "numba is not installed"

    def supports(self, backend) -> bool:
        return bool(backend.is_host)

    def _indices(self, program: ColumnProgram) -> Dict[str, np.ndarray]:
        cached = program.cache.get(self.name)
        if cached is None:
            cached = {
                "top": np.ascontiguousarray(program.top, dtype=np.int64),
                "bottom": np.ascontiguousarray(program.bottom, dtype=np.int64),
                "starts": np.ascontiguousarray(program.starts, dtype=np.int64),
            }
            program.cache[self.name] = cached
        return cached

    def run(self, backend, matrices, components, program: ColumnProgram) -> None:
        if not HAVE_NUMBA:  # pragma: no cover - guarded by available()
            raise RuntimeError("the numba sweep kernel requires numba")
        n = program.n
        lead = matrices.shape[:-2]
        # reshape silently copies (and ascontiguousarray explicitly copies)
        # when the batch slice is not a flat C view; shares_memory below
        # detects that and writes the swept values back.
        work = matrices.reshape((-1, n, n))
        if not work.flags["C_CONTIGUOUS"]:  # pragma: no cover - defensive
            work = np.ascontiguousarray(work)
        batch = work.shape[0]
        # Broadcast 1-D components across the batch and force contiguity
        # (the mesh broadcasts with stride-0 views when only the output
        # phase screen was perturbed; the jitted loop wants real strides).
        flat_components = []
        for component in components:
            expanded = np.broadcast_to(component, lead + component.shape[-1:])
            flat = np.ascontiguousarray(expanded.reshape((batch, -1)))
            flat_components.append(flat)
        indices = self._indices(program)
        _sweep_jit(
            work,
            flat_components[0],
            flat_components[1],
            flat_components[2],
            flat_components[3],
            indices["top"],
            indices["bottom"],
            indices["starts"],
        )
        if work is not matrices and not np.shares_memory(work, matrices):
            matrices[...] = work.reshape(matrices.shape)
