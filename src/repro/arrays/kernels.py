"""Namespace-generic out-buffer kernels of the numerics hot paths.

Every function here takes the array namespace ``xp`` explicitly and touches
arrays only through it (or through operators, which dispatch on the array
type) — this module never imports NumPy, which the seam lint
(``tools/check_numpy_seam.py``) enforces.  With ``xp`` bound to NumPy these
are the exact ufunc sequences the pre-seam implementations executed, so the
reference path stays byte-for-byte identical; with a device namespace the
same code runs on the device.

The ``out=`` parameters follow the library-wide workspace contract: an out
buffer only changes *where* the result lives, never its values, and callers
fully overwrite any buffer they receive.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "broadcast_shapes",
    "is_complex",
    "matmul_result_shape",
    "matmul_transposed",
    "softplus",
    "log_softmax",
    "unit_phasor",
    "mzi_block_components",
    "apply_mzi_blocks",
]


def broadcast_shapes(*shapes: Tuple[int, ...]) -> Tuple[int, ...]:
    """NumPy-style broadcast of shape tuples (pure host-side integer math)."""
    ndim = max((len(shape) for shape in shapes), default=0)
    result = []
    for axis in range(ndim):
        extent = 1
        for shape in shapes:
            index = axis - (ndim - len(shape))
            if index < 0:
                continue
            dim = int(shape[index])
            if dim == 1 or dim == extent:
                continue
            if extent == 1:
                extent = dim
            else:
                raise ValueError(f"shapes {shapes} are not broadcastable")
        result.append(extent)
    return tuple(result)


def is_complex(array) -> bool:
    """Whether ``array`` holds complex values (dtype-kind test, any namespace)."""
    return getattr(array, "dtype", None) is not None and array.dtype.kind == "c"


def matmul_result_shape(activations, matrix) -> Tuple[int, ...]:
    """Shape of ``activations @ swapaxes(matrix, -2, -1)`` under broadcasting."""
    return broadcast_shapes(
        tuple(activations.shape[:-1]), tuple(matrix.shape[:-2]) + (1,)
    ) + (int(matrix.shape[-2]),)


def matmul_transposed(xp, activations, matrix, out=None):
    """``activations @ matrix.T`` with a real/complex split on the hot path.

    After the modulus-Softplus the activations are real while the hardware
    matrices stay complex; multiplying through a complex matmul would spend
    half its work on the zero imaginary part, so the real and imaginary
    products are computed separately.  ``matrix`` may carry a leading batch
    axis (stacked matmuls run the same per-slice kernel as the 2-D ones on
    the reference namespace, keeping the looped and batched paths
    bit-identical).  ``out`` optionally supplies the result buffer.
    """
    transposed = xp.swapaxes(matrix, -2, -1)
    if is_complex(activations):
        if out is None:
            return xp.matmul(activations, transposed)
        return xp.matmul(activations, transposed, out=out)
    if out is None:
        out = xp.empty(matmul_result_shape(activations, matrix), dtype=xp.complex128)
    out.real = xp.matmul(activations, transposed.real)
    out.imag = xp.matmul(activations, transposed.imag)
    return out


def softplus(xp, x, beta: float = 1.0, threshold: float = 30.0, out=None):
    """Numerically stable Softplus, ``log(1 + exp(beta x)) / beta``.

    ``out`` optionally supplies the result buffer (it must not alias ``x``,
    which is still read for the saturated branch); one buffer is reused for
    the chained elementwise steps either way.
    """
    scaled = xp.multiply(beta, x, out=out) if out is not None else beta * x
    saturated = scaled > threshold
    any_saturated = bool(saturated.any())
    result = xp.minimum(scaled, threshold, out=scaled)
    xp.exp(result, out=result)
    xp.log1p(result, out=result)
    if beta != 1.0:
        result /= beta
    # With no saturated entries the where() would copy `result` verbatim.
    return xp.where(saturated, x, result) if any_saturated else result


def log_softmax(xp, x):
    """Row-wise log-softmax over the last axis."""
    shifted = x - xp.max(x, axis=-1, keepdims=True)
    return shifted - xp.log(xp.sum(xp.exp(shifted), axis=-1, keepdims=True))


def unit_phasor(xp, angle, out=None):
    """``exp(1j * angle)`` assembled from real sin/cos into one buffer.

    Bit-identical to ``exp(1j * angle)`` (complex exp of a purely imaginary
    argument reduces to exactly this) while skipping the complex temporary
    and the slower complex-exp kernel on the Monte Carlo hot path.
    """
    angle = xp.asarray(angle, dtype=xp.float64)
    if out is None:
        out = xp.empty(angle.shape, dtype=xp.complex128)
    xp.cos(angle, out=out.real)
    xp.sin(angle, out=out.imag)
    return out


def mzi_block_components(xp, theta, phi, r1, t1=None, r2=None, t2=None):
    """The four elements of the non-ideal MZI transfer matrix (paper Eq. (5)).

    Same physics as the assembled ``(..., 2, 2)`` matrix but returned as the
    tuple ``(T00, T01, T10, T11)`` of broadcast-shaped arrays — the layout
    the mesh evaluators consume directly.  All parameters broadcast.
    """
    theta = xp.asarray(theta, dtype=xp.float64)
    phi = xp.asarray(phi, dtype=xp.float64)
    r1 = xp.asarray(r1, dtype=xp.float64)
    r2 = xp.asarray(r1 if r2 is None else r2, dtype=xp.float64)
    t1 = (
        xp.sqrt(xp.clip(1.0 - r1**2, 0.0, 1.0))
        if t1 is None
        else xp.asarray(t1, dtype=xp.float64)
    )
    t2 = (
        xp.sqrt(xp.clip(1.0 - r2**2, 0.0, 1.0))
        if t2 is None
        else xp.asarray(t2, dtype=xp.float64)
    )
    e_theta = unit_phasor(xp, theta)
    e_phi = unit_phasor(xp, phi)
    e_both = e_phi * e_theta
    # Shared splitter products; multiplying a real array by 1j is an exact
    # placement into the imaginary part, so the factored forms below equal
    # the textbook Eq. (5) expressions term for term.
    rr = r1 * r2
    tt = t1 * t2
    i_rt = 1j * (r2 * t1)
    i_tr = 1j * (t2 * r1)
    i_tr2 = 1j * (t1 * r2)
    return (
        rr * e_both - tt * e_phi,
        i_rt * e_theta + i_tr,
        i_tr * e_both + i_tr2 * e_phi,
        rr - tt * e_theta,
    )


def apply_mzi_blocks(matrices, components, program) -> None:
    """Apply MZI 2x2 blocks to ``matrices`` in place, column by column.

    The *reference* column sweep — the byte-for-byte legacy arithmetic
    every registered sweep kernel (:mod:`repro.arrays.sweep`) is measured
    against.  ``matrices`` has shape ``(..., n, n)``; ``components`` are
    the four block-element arrays (``(..., M)`` or ``(M,)``, broadcasting
    over the leading dimensions) **already gathered into column-sorted
    order** by the program's propagation permutation; ``program`` is a
    :class:`~repro.arrays.sweep.ColumnProgram` whose packed ``top``/
    ``bottom`` index arrays live in the matrices' namespace.  Devices in
    one column act on disjoint mode pairs, so their two-row updates are
    gathered and applied in a single elementwise step; the arithmetic is
    pure elementwise multiply-add, which makes the batched application
    bit-identical to the single-realization one.
    """
    b00, b01, b10, b11 = components
    top_rows = program.top
    bottom_rows = program.bottom
    for start, stop in program.spans:
        top_modes = top_rows[start:stop]
        bottom_modes = bottom_rows[start:stop]
        top = matrices[..., top_modes, :]
        bottom = matrices[..., bottom_modes, :]
        matrices[..., top_modes, :] = (
            b00[..., start:stop, None] * top + b01[..., start:stop, None] * bottom
        )
        matrices[..., bottom_modes, :] = (
            b10[..., start:stop, None] * top + b11[..., start:stop, None] * bottom
        )
