"""CuPy ``RawKernel`` column sweep: the whole mesh in one device launch.

On the CuPy backend the looped (and even the fused) sweep still issues
O(columns) kernel launches per matrix build; for paper-sized meshes the
launch latency dwarfs the arithmetic.  This kernel replays the entire
column sweep as **one** launch per batch chunk: one CUDA block per
realization, threads striding over the (device, mode) work items of a
column, ``__syncthreads()`` between columns — the barrier encodes the
propagation-order dependence, while devices within a column touch
disjoint matrix rows so the intra-column updates are race-free.  This is
the record-once/replay-as-one-kernel idiom (cf. drjit's
``JitFlag.LoopRecord``) with the recording done ahead of time by the
packed :class:`~repro.arrays.sweep.ColumnProgram`.

Like every CuPy path in this repo the kernel is import-guarded: without
CuPy (or a CUDA device, or a working NVRTC) it reports unavailable and
the registry serves the ``fused`` kernel instead; a compile failure at
first use also degrades to ``fused`` rather than aborting a sweep.
Results follow the CuPy tolerance contract (allclose at fixed seeds; the
scalar complex arithmetic is the same ``a*t + b*u`` sequence, but device
rounding is not byte-pinned the way the host path is).
"""

from __future__ import annotations

import numpy as np

from .cupy_backend import _cupy, _device_usable
from .sweep import ColumnProgram, FusedSweepKernel, SweepKernel

__all__ = ["CupyRawSweepKernel", "SWEEP_KERNEL_SOURCE"]

#: Threads per block; one block serves one batch realization.  128 (4
#: warps) suits this memory-bound sweep (guide: common block sizes).
_BLOCK_THREADS = 128

SWEEP_KERNEL_SOURCE = r"""
#include <cupy/complex.cuh>

extern "C" __global__ void mzi_column_sweep(
    complex<double>* __restrict__ matrices,
    const complex<double>* __restrict__ b00,
    const complex<double>* __restrict__ b01,
    const complex<double>* __restrict__ b10,
    const complex<double>* __restrict__ b11,
    const long long* __restrict__ top,
    const long long* __restrict__ bottom,
    const long long* __restrict__ starts,
    const long long num_columns,
    const long long num_devices,
    const long long n
) {
    const long long batch_index = blockIdx.x;
    complex<double>* matrix = matrices + batch_index * n * n;
    const long long component_base = batch_index * num_devices;
    for (long long column = 0; column < num_columns; ++column) {
        const long long start = starts[column];
        const long long work = (starts[column + 1] - start) * n;
        for (long long item = threadIdx.x; item < work; item += blockDim.x) {
            const long long device = start + item / n;
            const long long j = item % n;
            const long long top_row = top[device];
            const long long bottom_row = bottom[device];
            const complex<double> t = matrix[top_row * n + j];
            const complex<double> b = matrix[bottom_row * n + j];
            const long long c = component_base + device;
            matrix[top_row * n + j] = b00[c] * t + b01[c] * b;
            matrix[bottom_row * n + j] = b10[c] * t + b11[c] * b;
        }
        // Propagation-order dependence: later columns read rows this
        // column wrote.  Within a column rows are disjoint, so the
        // barrier between columns is the only synchronization needed.
        __syncthreads();
    }
}
"""


class CupyRawSweepKernel(SweepKernel):
    """One-launch-per-chunk CUDA sweep; CuPy backend only."""

    name = "cupy_raw"
    #: A device wants one launch per column over the whole batch — host-side
    #: chunk loops only multiply launch overhead.
    blocks_internally = True

    def __init__(self) -> None:
        self._raw_kernel = None
        self._compile_failed = False
        self._fallback = FusedSweepKernel()

    def _probe(self):
        if _device_usable():
            return True, None
        reason = "cupy is not installed" if _cupy is None else "no usable CUDA device"
        return False, reason

    def supports(self, backend) -> bool:
        return backend.name == "cupy"

    def _compiled(self):  # pragma: no cover - requires a CUDA device
        if self._raw_kernel is None and not self._compile_failed:
            try:
                self._raw_kernel = _cupy.RawKernel(SWEEP_KERNEL_SOURCE, "mzi_column_sweep")
                self._raw_kernel.compile()
            except Exception:
                # No NVRTC / unsupported arch: degrade to the fused
                # elementwise path instead of failing the sweep.
                self._raw_kernel = None
                self._compile_failed = True
        return self._raw_kernel

    def _indices(self, program: ColumnProgram):  # pragma: no cover - requires CUDA
        cached = program.cache.get(self.name)
        if cached is None:
            cached = (
                _cupy.asarray(np.ascontiguousarray(program.top, dtype=np.int64)),
                _cupy.asarray(np.ascontiguousarray(program.bottom, dtype=np.int64)),
                _cupy.asarray(np.ascontiguousarray(program.starts, dtype=np.int64)),
            )
            program.cache[self.name] = cached
        return cached

    def run(self, backend, matrices, components, program: ColumnProgram) -> None:
        # pragma: no cover - requires a CUDA device
        kernel = self._compiled()
        if kernel is None:
            self._fallback.run(backend, matrices, components, program)
            return
        n = program.n
        num_devices = program.num_devices
        if num_devices == 0:
            return
        work = matrices.reshape((-1, n, n))
        if not work.flags.c_contiguous:
            work = _cupy.ascontiguousarray(work)
        batch = work.shape[0]
        lead = matrices.shape[:-2]
        flat_components = []
        for component in components:
            expanded = _cupy.broadcast_to(component, lead + component.shape[-1:])
            flat = _cupy.ascontiguousarray(
                expanded.reshape((batch, num_devices)), dtype=_cupy.complex128
            )
            flat_components.append(flat)
        top, bottom, starts = self._indices(program)
        kernel(
            (batch,),
            (_BLOCK_THREADS,),
            (
                work,
                flat_components[0],
                flat_components[1],
                flat_components[2],
                flat_components[3],
                top,
                bottom,
                starts,
                np.int64(program.num_columns),
                np.int64(num_devices),
                np.int64(n),
            ),
        )
        if work.data.ptr != matrices.data.ptr:
            matrices[...] = work.reshape(matrices.shape)
