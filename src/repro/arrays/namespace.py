"""The array-namespace seam: pluggable ``xp`` backends for the numerics core.

Every hot-path array operation in this library routes through an *array
namespace* — ``xp`` in the NumPy array-API idiom — obtained from an
:class:`ArrayBackend`.  The reference backend binds ``xp`` to NumPy itself,
so the default path executes the exact same ufunc calls as before the seam
existed and stays **byte-for-byte identical**.  Alternative backends retarget
the same kernels at other array libraries:

* :class:`~repro.arrays.cupy_backend.CupyArrayBackend` runs them on a GPU
  (CuPy arrays, optional dependency), and
* :class:`~repro.arrays.mock.MockArrayBackend` runs them on a strict
  host-memory *device emulator* that raises on any implicit host/device
  mixing — the conformance harness that catches stray ``np.`` calls on
  CPU-only CI.

**Determinism contract.**  Randomness never originates on a device: the
namespace-aware RNG shim (:meth:`ArrayBackend.standard_normal_rows`, layered
over :mod:`repro.utils.rng`) always consumes the NumPy child generators on
the host — exactly as the serial path does — and only then transfers the
draws.  The NumPy backend is therefore bit-identical to the pre-seam code,
and a device backend sees the *same sampled values*; only the floating-point
reduction order of its linear algebra may differ, which is the documented
``allclose``-at-fixed-seeds tolerance contract of the GPU path.

**Context discipline.**  Device-ness is contextual, not per-array: the
execution layer (``GpuBackend``) activates a backend around each chunk
evaluation via :func:`use_array_backend`, and the kernels pick their
namespace up from :func:`active_array_backend`.  Host arrays entering a
device context are moved across explicitly (``asarray`` /
:meth:`ArrayBackend.asarray_cached`); results come back through
:func:`to_host` at chunk reassembly — never implicitly in between.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "ArrayBackend",
    "NumpyArrayBackend",
    "HOST_BACKEND",
    "register_array_backend",
    "get_array_backend",
    "array_backend_names",
    "available_array_backends",
    "active_array_backend",
    "use_array_backend",
    "get_namespace",
    "backend_of",
    "to_host",
]


class ArrayBackend:
    """One retargetable array namespace plus its host<->device transfer rules.

    Subclasses bind :attr:`xp` to a concrete array library (NumPy, CuPy, the
    strict mock) and implement ownership tests and transfers.  Instances are
    lightweight and stateless apart from the bounded transfer cache, so the
    registry hands out one shared instance per backend name.
    """

    #: Registry name of the backend (``"numpy"``, ``"cupy"``, ``"mock_device"``).
    name: str = "abstract"
    #: Whether this backend's arrays live in host memory as plain ndarrays.
    is_host: bool = False

    #: Entries kept in the host->device transfer cache (eval sets, nominal
    #: parameter arrays, index arrays — a handful of long-lived objects).
    _CACHE_CAPACITY = 64

    def __init__(self) -> None:
        # id(host_array) -> (host_array, device_array); the stored host
        # reference both keeps the id stable and lets lookups verify identity.
        self._transfer_cache: Dict[int, Tuple[np.ndarray, object]] = {}

    # ------------------------------------------------------------------ #
    # availability / namespace
    # ------------------------------------------------------------------ #
    @classmethod
    def available(cls) -> bool:
        """Whether the backing array library can be imported here."""
        return True

    @property
    def xp(self):
        """The array namespace (module-like object) of this backend."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # ownership and transfers
    # ------------------------------------------------------------------ #
    def owns(self, value: object) -> bool:
        """Whether ``value`` is an array of this backend's namespace."""
        raise NotImplementedError

    def asarray(self, value, dtype=None):
        """Move ``value`` into this backend's namespace (no-op if already there)."""
        raise NotImplementedError

    def to_host(self, value) -> np.ndarray:
        """Copy/view ``value`` back to a host :class:`numpy.ndarray`."""
        raise NotImplementedError

    def empty(self, shape: Tuple[int, ...], dtype) -> object:
        """An uninitialized array of this namespace (workspace allocations)."""
        return self.xp.empty(shape, dtype=dtype)

    def asarray_cached(self, array: np.ndarray):
        """``asarray`` with a bounded identity-checked cache for host arrays.

        Long-lived host arrays (evaluation sets, nominal mesh parameters,
        structural index arrays) are transferred once per backend instead of
        once per Monte Carlo chunk.  The cache key is the host array's
        ``id`` *verified by identity* against the stored reference, so a
        recycled id can never alias a stale device copy; replacing the host
        array (e.g. ``MZIMesh.retune``) naturally invalidates its entry.
        """
        if not isinstance(array, np.ndarray):
            return self.asarray(array)
        key = id(array)
        entry = self._transfer_cache.get(key)
        if entry is not None and entry[0] is array:
            return entry[1]
        device = self.asarray(array)
        if len(self._transfer_cache) >= self._CACHE_CAPACITY:
            self._transfer_cache.pop(next(iter(self._transfer_cache)))
        self._transfer_cache[key] = (array, device)
        return device

    def clear_cache(self) -> None:
        """Drop every cached host->device transfer."""
        self._transfer_cache.clear()

    # ------------------------------------------------------------------ #
    # namespace-aware RNG shim (over repro.utils.rng generators)
    # ------------------------------------------------------------------ #
    def standard_normal_rows(
        self,
        generators: Sequence[np.random.Generator],
        length: int,
        out=None,
        host_staging: Optional[np.ndarray] = None,
    ):
        """A ``(B, length)`` standard-normal matrix, row ``b`` from stream ``b``.

        The draws always happen on the host, consuming each NumPy child
        generator exactly as the serial samplers do (``standard_normal(out=
        row)`` equals a plain ``standard_normal(length)`` call bit for bit),
        then move into this backend's namespace.  ``out`` optionally
        supplies the destination buffer (a workspace view);
        ``host_staging`` optionally supplies the host-side staging buffer a
        device backend fills before the transfer.
        """
        draws = host_staging
        if draws is None or draws.shape != (len(generators), length):
            draws = np.empty((len(generators), length), dtype=np.float64)
        if length:
            for row, gen in zip(draws, generators):
                gen.standard_normal(out=row)
        if out is None:
            return self.asarray(draws)
        out[...] = self.asarray(draws)
        return out

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyArrayBackend(ArrayBackend):
    """The reference backend: ``xp`` *is* NumPy, transfers are no-ops.

    Routing a kernel through this backend executes exactly the same NumPy
    calls as writing ``np.`` directly, which is what keeps the default path
    of the refactored numerics core byte-for-byte identical to the pre-seam
    implementation.
    """

    name = "numpy"
    is_host = True

    @property
    def xp(self):
        return np

    def owns(self, value: object) -> bool:
        return isinstance(value, np.ndarray)

    def asarray(self, value, dtype=None):
        return np.asarray(value, dtype=dtype)

    def to_host(self, value) -> np.ndarray:
        return np.asarray(value)

    def asarray_cached(self, array):
        # Host arrays are already "on device"; never cache, never copy.
        return np.asarray(array)

    def standard_normal_rows(self, generators, length, out=None, host_staging=None):
        draws = out
        if draws is None:
            draws = np.empty((len(generators), length), dtype=np.float64)
        if length:
            for row, gen in zip(draws, generators):
                gen.standard_normal(out=row)
        return draws


#: The process-wide reference backend instance.
HOST_BACKEND = NumpyArrayBackend()

# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #

#: Registered backend factories by name (instantiated lazily, one per name).
_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {"numpy": HOST_BACKEND}


def register_array_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name`` (idempotent per name)."""
    _FACTORIES[name] = factory


def array_backend_names() -> Tuple[str, ...]:
    """Every registered backend name (available here or not)."""
    return tuple(dict.fromkeys(list(_INSTANCES) + list(_FACTORIES)))


def get_array_backend(backend: Union[str, ArrayBackend, None]) -> ArrayBackend:
    """Resolve a name (or pass through an instance) to an :class:`ArrayBackend`.

    ``None`` resolves to the NumPy reference backend.  Unknown names and
    backends whose array library is not importable raise a
    :class:`~repro.exceptions.ConfigurationError` with the available
    choices, so a missing optional dependency (CuPy) fails loudly and
    early instead of deep inside a kernel.
    """
    if backend is None:
        return HOST_BACKEND
    if isinstance(backend, ArrayBackend):
        return backend
    name = str(backend).lower()
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown array backend {backend!r}; registered: {sorted(array_backend_names())}"
        )
    instance = factory()
    if not instance.available():
        raise ConfigurationError(
            f"array backend {name!r} is not available on this machine "
            f"(its array library cannot be imported); available: {available_array_backends()}"
        )
    _INSTANCES[name] = instance
    return instance


def available_array_backends() -> Tuple[str, ...]:
    """Names of the registered backends usable on this machine."""
    names = []
    for name in array_backend_names():
        instance = _INSTANCES.get(name)
        if instance is not None:
            names.append(name)
            continue
        factory = _FACTORIES[name]
        try:
            if factory().available():
                names.append(name)
        except Exception:  # pragma: no cover - defensively treat as absent
            continue
    return tuple(names)


# --------------------------------------------------------------------------- #
# active-backend context
# --------------------------------------------------------------------------- #

#: The backend the numerics core currently targets (contextvar so nested
#: scopes and any future task-based concurrency stay correctly isolated).
_ACTIVE: ContextVar[ArrayBackend] = ContextVar("repro_active_array_backend", default=HOST_BACKEND)


def active_array_backend() -> ArrayBackend:
    """The backend array kernels currently allocate on (NumPy by default)."""
    return _ACTIVE.get()


@contextmanager
def use_array_backend(backend: Union[str, ArrayBackend, None]) -> Iterator[ArrayBackend]:
    """Activate ``backend`` for the duration of the block.

    The execution layer wraps each device chunk evaluation in this context;
    everything underneath (samplers, mesh evaluation, forward kernels,
    workspace allocation) then targets the backend's namespace without any
    signature changes.
    """
    resolved = get_array_backend(backend)
    token = _ACTIVE.set(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE.reset(token)


# --------------------------------------------------------------------------- #
# array-API style helpers
# --------------------------------------------------------------------------- #


def backend_of(*arrays: object) -> ArrayBackend:
    """The backend owning ``arrays`` (first non-host owner wins).

    Mirrors the array-API ``get_namespace`` idiom: plain ndarrays (and
    scalars / ``None``) resolve to the NumPy reference backend; an array of
    an instantiated device backend resolves to that backend.  Mixing arrays
    of two *different* device backends is a programming error and raises.
    """
    owner: Optional[ArrayBackend] = None
    for value in arrays:
        if value is None or isinstance(value, np.ndarray):
            continue
        for instance in _INSTANCES.values():
            if instance.is_host or not instance.owns(value):
                continue
            if owner is not None and owner is not instance:
                raise ConfigurationError(
                    f"arrays from two different backends ({owner.name!r} and "
                    f"{instance.name!r}) cannot be mixed"
                )
            owner = instance
    return owner if owner is not None else HOST_BACKEND


def get_namespace(*arrays: object):
    """The ``xp`` namespace of the backend owning ``arrays`` (NumPy default)."""
    return backend_of(*arrays).xp


def to_host(value) -> np.ndarray:
    """Copy ``value`` back to a host ndarray, whatever backend owns it."""
    return backend_of(value).to_host(value)
