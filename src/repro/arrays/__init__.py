"""Device-agnostic array layer: the pluggable ``xp`` namespace seam.

See :mod:`repro.arrays.namespace` for the backend protocol, registry and
active-backend context, :mod:`repro.arrays.kernels` for the namespace-
generic out-buffer kernels of the numerics hot paths, and
:mod:`repro.arrays.mock` / :mod:`repro.arrays.cupy_backend` for the strict
conformance backend and the optional GPU backend.
"""

from . import kernels
from .cupy_backend import CupyArrayBackend
from .mock import MockArray, MockArrayBackend, MockNamespace
from .namespace import (
    HOST_BACKEND,
    ArrayBackend,
    NumpyArrayBackend,
    active_array_backend,
    array_backend_names,
    available_array_backends,
    backend_of,
    get_array_backend,
    get_namespace,
    register_array_backend,
    to_host,
    use_array_backend,
)

register_array_backend("mock_device", MockArrayBackend)
register_array_backend("cupy", CupyArrayBackend)

__all__ = [
    "kernels",
    "ArrayBackend",
    "NumpyArrayBackend",
    "CupyArrayBackend",
    "MockArray",
    "MockArrayBackend",
    "MockNamespace",
    "HOST_BACKEND",
    "active_array_backend",
    "array_backend_names",
    "available_array_backends",
    "backend_of",
    "get_array_backend",
    "get_namespace",
    "register_array_backend",
    "to_host",
    "use_array_backend",
]
