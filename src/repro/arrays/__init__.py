"""Device-agnostic array layer: the pluggable ``xp`` namespace seam.

See :mod:`repro.arrays.namespace` for the backend protocol, registry and
active-backend context, :mod:`repro.arrays.kernels` for the namespace-
generic out-buffer kernels of the numerics hot paths,
:mod:`repro.arrays.sweep` for the column-sweep kernel registry (packed
column programs, fused/numba/cupy megakernels), and
:mod:`repro.arrays.mock` / :mod:`repro.arrays.cupy_backend` for the strict
conformance backend and the optional GPU backend.
"""

from . import kernels
from .cupy_backend import CupyArrayBackend
from .mock import MockArray, MockArrayBackend, MockNamespace
from .sweep import (
    SWEEP_KERNEL_ENV,
    ColumnProgram,
    FusedSweepKernel,
    LoopedSweepKernel,
    SweepKernel,
    SweepShape,
    apply_column_sweep,
    available_sweep_kernels,
    get_sweep_kernel,
    register_sweep_kernel,
    select_sweep_kernel,
    sweep_kernel_names,
    _register_optional_kernels,
)
from .namespace import (
    HOST_BACKEND,
    ArrayBackend,
    NumpyArrayBackend,
    active_array_backend,
    array_backend_names,
    available_array_backends,
    backend_of,
    get_array_backend,
    get_namespace,
    register_array_backend,
    to_host,
    use_array_backend,
)

register_array_backend("mock_device", MockArrayBackend)
register_array_backend("cupy", CupyArrayBackend)
_register_optional_kernels()

__all__ = [
    "kernels",
    "ColumnProgram",
    "SweepKernel",
    "SweepShape",
    "LoopedSweepKernel",
    "FusedSweepKernel",
    "SWEEP_KERNEL_ENV",
    "apply_column_sweep",
    "available_sweep_kernels",
    "get_sweep_kernel",
    "register_sweep_kernel",
    "select_sweep_kernel",
    "sweep_kernel_names",
    "ArrayBackend",
    "NumpyArrayBackend",
    "CupyArrayBackend",
    "MockArray",
    "MockArrayBackend",
    "MockNamespace",
    "HOST_BACKEND",
    "active_array_backend",
    "array_backend_names",
    "available_array_backends",
    "backend_of",
    "get_array_backend",
    "get_namespace",
    "register_array_backend",
    "to_host",
    "use_array_backend",
]
