"""A small reverse-mode automatic-differentiation engine over NumPy arrays.

The silicon-photonic neural network of the paper is a *complex-valued*
network (complex weight matrices, modulus non-linearities).  Since no deep
learning framework is available in this environment, this module provides
the training substrate: a :class:`Tensor` wrapper around ``numpy.ndarray``
with reverse-mode autodiff that supports both real and complex data.

Gradient convention for complex tensors
---------------------------------------
For a real-valued loss ``L`` and a complex tensor ``z = x + iy``, the stored
gradient is::

    grad(z) = dL/dx + i * dL/dy  =  2 * dL/d(conj(z))

With this convention a plain gradient-descent update ``z -= lr * grad(z)``
is exactly gradient descent on the underlying real parameters ``(x, y)``,
which is how the software model of the SPNN is trained before its weights
are compiled onto MZI meshes.  For holomorphic operations the backward rule
is ``grad_in = grad_out * conj(d out / d in)``; non-holomorphic operations
(``abs``, ``abs2``, ``real``, ``imag``, ``conj``) implement the full
Wirtinger rule ``grad_in = conj(grad_out)*d out/d conj(in) + grad_out *
conj(d out/d in)`` specialized to their definition.  All rules are verified
against finite differences in ``tests/autograd``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import AutogradError

ArrayLike = Union[int, float, complex, Sequence, np.ndarray, "Tensor"]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcasted axes so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were of size 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _promote(data: np.ndarray) -> np.ndarray:
    """Normalize dtypes to float64 / complex128."""
    if np.iscomplexobj(data):
        return np.asarray(data, dtype=np.complex128)
    return np.asarray(data, dtype=np.float64)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a NumPy array.  Real inputs are stored as
        ``float64``, complex inputs as ``complex128``.
    requires_grad:
        When ``True`` the tensor participates in the autodiff graph and will
        receive a ``.grad`` after :meth:`backward`.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_backward_fn", "_op_name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = _promote(np.asarray(data))
        self.requires_grad: bool = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[Tensor, ...] = ()
        self._backward_fn: Optional[Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]] = None
        self._op_name: str = "leaf"

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def is_complex(self) -> bool:
        return np.iscomplexobj(self.data)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (not a copy)."""
        return self.data

    def item(self) -> Union[float, complex]:
        """Return the value of a single-element tensor as a Python scalar."""
        return self.data.item()

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but outside the autodiff graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _as_tensor(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @classmethod
    def _make(
        cls,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]],
        op_name: str,
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward_fn = backward_fn
            out._op_name = op_name
        return out

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ``1`` which requires the tensor
            to be a scalar (the usual loss case).
        """
        if not self.requires_grad:
            raise AutogradError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise AutogradError(
                    f"backward() without an explicit gradient requires a scalar tensor, got shape {self.shape}"
                )
            grad_arr = np.ones_like(self.data)
        else:
            grad_arr = _promote(np.asarray(grad.data if isinstance(grad, Tensor) else grad))
            if grad_arr.shape != self.shape:
                raise AutogradError(f"gradient shape {grad_arr.shape} does not match tensor shape {self.shape}")

        topo: List[Tensor] = []
        visited: set[int] = set()

        # Iterative topological sort to avoid recursion limits on deep graphs.
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if not node.requires_grad:
                continue
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad_arr}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._parents and node._backward_fn is not None:
                parent_grads = node._backward_fn(node_grad)
                if len(parent_grads) != len(node._parents):
                    raise AutogradError(
                        f"op {node._op_name!r} returned {len(parent_grads)} gradients for {len(node._parents)} parents"
                    )
                for parent, parent_grad in zip(node._parents, parent_grads):
                    if parent_grad is None or not parent.requires_grad:
                        continue
                    if not np.iscomplexobj(parent.data):
                        parent_grad = np.real(parent_grad)
                    existing = grads.get(id(parent))
                    grads[id(parent)] = parent_grad if existing is None else existing + parent_grad
            else:
                # Leaf tensor: accumulate into .grad so optimizers can read it.
                node.grad = node_grad if node.grad is None else node.grad + node_grad
            if node is self and node._parents:
                # Keep the root gradient around for inspection/debugging.
                node.grad = node_grad

    # ------------------------------------------------------------------ #
    # arithmetic operators (holomorphic)
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._as_tensor(other)
        data = self.data + other.data
        a_shape, b_shape = self.shape, other.shape

        def backward(grad: np.ndarray):
            return _unbroadcast(grad, a_shape), _unbroadcast(grad, b_shape)

        return Tensor._make(data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._as_tensor(other)
        data = self.data - other.data
        a_shape, b_shape = self.shape, other.shape

        def backward(grad: np.ndarray):
            return _unbroadcast(grad, a_shape), _unbroadcast(-grad, b_shape)

        return Tensor._make(data, (self, other), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._as_tensor(other)
        data = self.data * other.data
        a, b = self, other

        def backward(grad: np.ndarray):
            grad_a = _unbroadcast(grad * np.conj(b.data), a.shape)
            grad_b = _unbroadcast(grad * np.conj(a.data), b.shape)
            return grad_a, grad_b

        return Tensor._make(data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._as_tensor(other)
        data = self.data / other.data
        a, b = self, other

        def backward(grad: np.ndarray):
            grad_a = _unbroadcast(grad * np.conj(1.0 / b.data), a.shape)
            grad_b = _unbroadcast(grad * np.conj(-a.data / (b.data**2)), b.shape)
            return grad_a, grad_b

        return Tensor._make(data, (self, other), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise AutogradError("tensor exponents are not supported; use exp/log composition instead")
        exponent = float(exponent)
        data = self.data**exponent
        a = self

        def backward(grad: np.ndarray):
            return (grad * np.conj(exponent * a.data ** (exponent - 1)),)

        return Tensor._make(data, (self,), backward, "pow")

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._as_tensor(other)
        if self.ndim < 1 or other.ndim < 1:
            raise AutogradError("matmul requires tensors with at least 1 dimension")
        data = self.data @ other.data
        a, b = self, other

        def backward(grad: np.ndarray):
            a_data, b_data = a.data, b.data
            if a_data.ndim == 1 and b_data.ndim == 1:
                grad_a = grad * np.conj(b_data)
                grad_b = grad * np.conj(a_data)
            elif a_data.ndim == 1:
                # (k,) @ (k, n) -> (n,)
                grad_a = grad @ np.conj(b_data).T
                grad_b = np.outer(np.conj(a_data), grad)
            elif b_data.ndim == 1:
                # (m, k) @ (k,) -> (m,)
                grad_a = np.outer(grad, np.conj(b_data))
                grad_b = np.conj(a_data).T @ grad
            else:
                grad_a = grad @ np.conj(np.swapaxes(b_data, -1, -2))
                grad_b = np.conj(np.swapaxes(a_data, -1, -2)) @ grad
                grad_a = _unbroadcast(grad_a, a_data.shape)
                grad_b = _unbroadcast(grad_b, b_data.shape)
            return grad_a, grad_b

        return Tensor._make(data, (self, other), backward, "matmul")

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return self._as_tensor(other).__matmul__(self)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray):
            return (grad.reshape(original),)

        return Tensor._make(data, (self,), backward, "reshape")

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        data = np.transpose(self.data, axes)

        def backward(grad: np.ndarray):
            if axes is None:
                return (np.transpose(grad),)
            inverse = np.argsort(axes)
            return (np.transpose(grad, inverse),)

        return Tensor._make(data, (self,), backward, "transpose")

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        source_shape = self.shape

        def backward(grad: np.ndarray):
            full = np.zeros(source_shape, dtype=np.complex128 if np.iscomplexobj(self.data) else np.float64)
            np.add.at(full, index, np.real(grad) if not np.iscomplexobj(full) else grad)
            return (full,)

        return Tensor._make(data, (self,), backward, "getitem")

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        source_shape = self.shape

        def backward(grad: np.ndarray):
            if axis is None:
                return (np.broadcast_to(grad, source_shape).copy(),)
            grad_expanded = grad
            if not keepdims:
                grad_expanded = np.expand_dims(grad, axis=axis)
            return (np.broadcast_to(grad_expanded, source_shape).copy(),)

        return Tensor._make(data, (self,), backward, "sum")

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------ #
    # complex-specific / non-holomorphic operations
    # ------------------------------------------------------------------ #
    def conj(self) -> "Tensor":
        data = np.conj(self.data)

        def backward(grad: np.ndarray):
            return (np.conj(grad),)

        return Tensor._make(data, (self,), backward, "conj")

    def real(self) -> "Tensor":
        data = np.real(self.data).copy()
        is_complex = self.is_complex

        def backward(grad: np.ndarray):
            grad = np.real(grad)
            return (grad.astype(np.complex128) if is_complex else grad,)

        return Tensor._make(data, (self,), backward, "real")

    def imag(self) -> "Tensor":
        data = np.imag(self.data).copy()
        is_complex = self.is_complex

        def backward(grad: np.ndarray):
            grad = np.real(grad)
            return (1j * grad if is_complex else np.zeros_like(grad),)

        return Tensor._make(data, (self,), backward, "imag")

    def abs(self, eps: float = 1e-12) -> "Tensor":
        """Element-wise modulus ``|z|`` (real output).

        The gradient follows the Wirtinger convention described in the
        module docstring: ``grad_z = grad_out * z / |z|``.  ``eps`` guards
        the division at exact zeros.
        """
        magnitude = np.abs(self.data)
        a = self

        def backward(grad: np.ndarray):
            grad = np.real(grad)
            denom = np.maximum(magnitude, eps)
            if a.is_complex:
                return (grad * a.data / denom,)
            return (grad * np.sign(a.data),)

        return Tensor._make(magnitude, (self,), backward, "abs")

    def abs2(self) -> "Tensor":
        """Element-wise squared modulus ``|z|^2`` (real output).

        Models the intensity measurement at the SPNN output (photodetector
        reads optical power, i.e. squared field modulus).
        """
        data = (self.data * np.conj(self.data)).real.copy()
        a = self

        def backward(grad: np.ndarray):
            grad = np.real(grad)
            if a.is_complex:
                return (2.0 * grad * a.data,)
            return (2.0 * grad * a.data,)

        return Tensor._make(data, (self,), backward, "abs2")

    def angle(self, eps: float = 1e-12) -> "Tensor":
        """Element-wise argument ``arg(z)`` (real output)."""
        data = np.angle(self.data)
        a = self

        def backward(grad: np.ndarray):
            grad = np.real(grad)
            mag2 = np.maximum(np.abs(a.data) ** 2, eps)
            if a.is_complex:
                # d arg/dx = -y/|z|^2 , d arg/dy = x/|z|^2  ->  grad_z = grad * (i z)/|z|^2
                return (grad * (1j * a.data) / mag2,)
            return (np.zeros_like(grad),)

        return Tensor._make(data, (self,), backward, "angle")

    # ------------------------------------------------------------------ #
    # real element-wise functions (used on the real pathway of the SPNN)
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * np.conj(data),)

        return Tensor._make(data, (self,), backward, "exp")

    def log(self, eps: float = 0.0) -> "Tensor":
        data = np.log(self.data + eps) if eps else np.log(self.data)
        a = self

        def backward(grad: np.ndarray):
            return (grad * np.conj(1.0 / (a.data + eps)),)

        return Tensor._make(data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        return self**0.5

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(shape: Sequence[int], dtype=np.float64, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Sequence[int], dtype=np.float64, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = list(tensors)
        data = np.stack([t.data for t in tensors], axis=axis)
        shapes = [t.shape for t in tensors]

        def backward(grad: np.ndarray):
            pieces = np.split(grad, len(tensors), axis=axis)
            return tuple(p.reshape(shape) for p, shape in zip(pieces, shapes))

        return Tensor._make(data, tuple(tensors), backward, "stack")


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convert ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
