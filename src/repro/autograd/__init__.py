"""Complex-capable reverse-mode automatic differentiation over NumPy.

This subpackage is the training substrate for the software model of the
silicon-photonic neural network: a light-weight tensor/autograd engine with
Wirtinger-convention gradients for complex parameters.
"""

from .functional import (
    accuracy,
    cross_entropy,
    log_softmax,
    modulus,
    modulus_squared,
    mse_loss,
    nll_loss,
    relu,
    sigmoid,
    softmax,
    softplus,
    tanh,
)
from .grad_check import check_gradients, numerical_gradient
from .tensor import Tensor, as_tensor

__all__ = [
    "Tensor",
    "as_tensor",
    "softplus",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "modulus",
    "modulus_squared",
    "nll_loss",
    "cross_entropy",
    "mse_loss",
    "accuracy",
    "check_gradients",
    "numerical_gradient",
]
