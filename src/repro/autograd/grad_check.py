"""Numerical gradient checking for the autograd engine.

The checker perturbs the real and imaginary parts of every input entry
independently and compares the finite-difference estimate of
``dL/dRe(z) + i dL/dIm(z)`` against the analytic gradient produced by
:meth:`Tensor.backward` — i.e. it verifies the exact Wirtinger convention
the library uses for complex parameters.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Finite-difference gradient of ``func(*inputs)`` w.r.t. ``inputs[index]``.

    ``func`` must return a real scalar :class:`Tensor`.
    """
    target = inputs[index]
    base = target.data.copy()
    grad = np.zeros_like(base, dtype=np.complex128 if target.is_complex else np.float64)

    def evaluate() -> float:
        out = func(*inputs)
        value = out.data
        if value.size != 1:
            raise ValueError("gradient checking requires a scalar output")
        return float(np.real(value))

    it = np.nditer(base, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = base[idx]

        target.data[idx] = original + eps
        f_plus = evaluate()
        target.data[idx] = original - eps
        f_minus = evaluate()
        d_real = (f_plus - f_minus) / (2 * eps)

        if target.is_complex:
            target.data[idx] = original + 1j * eps
            f_plus = evaluate()
            target.data[idx] = original - 1j * eps
            f_minus = evaluate()
            d_imag = (f_plus - f_minus) / (2 * eps)
            grad[idx] = d_real + 1j * d_imag
        else:
            grad[idx] = d_real

        target.data[idx] = original
        it.iternext()

    return grad


def check_gradients(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> bool:
    """Verify analytic vs. numerical gradients for every ``requires_grad`` input.

    Returns ``True`` when all gradients match; raises ``AssertionError`` with
    a diagnostic message otherwise (so test failures are informative).
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = func(*inputs)
    output.backward()

    for position, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad
        if analytic is None:
            raise AssertionError(f"input {position} received no gradient")
        numeric = numerical_gradient(func, inputs, position, eps=eps)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {position}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
