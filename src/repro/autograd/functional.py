"""Functional (stateless) operations built on :class:`~repro.autograd.tensor.Tensor`.

These implement the real-valued tail of the SPNN pipeline from the paper
(§III-D): the Softplus applied to the modulus of complex activations, the
squared-modulus intensity measurement, the LogSoftMax output stage and the
cross-entropy loss, plus a handful of generally useful activations.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..exceptions import AutogradError
from .tensor import ArrayLike, Tensor, as_tensor


def _require_real(tensor: Tensor, op: str) -> Tensor:
    if tensor.is_complex:
        raise AutogradError(f"{op} expects a real tensor; apply .abs() or .abs2() first")
    return tensor


def softplus(x: ArrayLike, beta: float = 1.0, threshold: float = 30.0) -> Tensor:
    """Numerically stable Softplus ``log(1 + exp(beta x)) / beta``.

    For ``beta * x > threshold`` the linear asymptote ``x`` is used, as in
    common deep-learning frameworks, to avoid overflow.
    """
    x = _require_real(as_tensor(x), "softplus")
    scaled = x.data * beta
    out_data = np.where(scaled > threshold, x.data, np.log1p(np.exp(np.minimum(scaled, threshold))) / beta)

    def backward(grad: np.ndarray):
        grad = np.real(grad)
        sig = np.where(scaled > threshold, 1.0, 1.0 / (1.0 + np.exp(-np.minimum(scaled, threshold))))
        return (grad * sig,)

    return Tensor._make(out_data, (x,), backward, "softplus")


def relu(x: ArrayLike) -> Tensor:
    """Rectified linear unit for real tensors."""
    x = _require_real(as_tensor(x), "relu")
    out_data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray):
        return (np.real(grad) * (x.data > 0.0),)

    return Tensor._make(out_data, (x,), backward, "relu")


def sigmoid(x: ArrayLike) -> Tensor:
    """Logistic sigmoid for real tensors."""
    x = _require_real(as_tensor(x), "sigmoid")
    out_data = 1.0 / (1.0 + np.exp(-x.data))

    def backward(grad: np.ndarray):
        return (np.real(grad) * out_data * (1.0 - out_data),)

    return Tensor._make(out_data, (x,), backward, "sigmoid")


def tanh(x: ArrayLike) -> Tensor:
    """Hyperbolic tangent for real tensors."""
    x = _require_real(as_tensor(x), "tanh")
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray):
        return (np.real(grad) * (1.0 - out_data**2),)

    return Tensor._make(out_data, (x,), backward, "tanh")


def log_softmax(x: ArrayLike, axis: int = -1) -> Tensor:
    """Log of the softmax along ``axis`` with the usual max-shift stabilization."""
    x = _require_real(as_tensor(x), "log_softmax")
    shifted = x.data - np.max(x.data, axis=axis, keepdims=True)
    log_norm = np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
    out_data = shifted - log_norm

    def backward(grad: np.ndarray):
        grad = np.real(grad)
        softmax = np.exp(out_data)
        return (grad - softmax * np.sum(grad, axis=axis, keepdims=True),)

    return Tensor._make(out_data, (x,), backward, "log_softmax")


def softmax(x: ArrayLike, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (derived from :func:`log_softmax` for stability)."""
    return log_softmax(x, axis=axis).exp()


def modulus(x: ArrayLike) -> Tensor:
    """Element-wise modulus ``|z|`` (alias of :meth:`Tensor.abs`)."""
    return as_tensor(x).abs()


def modulus_squared(x: ArrayLike) -> Tensor:
    """Element-wise squared modulus ``|z|^2`` (photodetector intensity)."""
    return as_tensor(x).abs2()


def nll_loss(log_probs: ArrayLike, targets: Union[Sequence[int], np.ndarray], reduction: str = "mean") -> Tensor:
    """Negative log-likelihood loss for log-probability inputs.

    Parameters
    ----------
    log_probs:
        Real tensor of shape ``(batch, classes)`` holding log-probabilities.
    targets:
        Integer class indices of shape ``(batch,)``.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    log_probs = _require_real(as_tensor(log_probs), "nll_loss")
    if log_probs.ndim != 2:
        raise AutogradError(f"nll_loss expects (batch, classes) log-probabilities, got shape {log_probs.shape}")
    targets = np.asarray(targets, dtype=np.int64)
    if targets.ndim != 1 or targets.shape[0] != log_probs.shape[0]:
        raise AutogradError(
            f"targets must be 1-D with length {log_probs.shape[0]}, got shape {targets.shape}"
        )
    if targets.min(initial=0) < 0 or targets.max(initial=0) >= log_probs.shape[1]:
        raise AutogradError("target class index out of range")
    batch = log_probs.shape[0]
    rows = np.arange(batch)
    picked = -log_probs.data[rows, targets]

    if reduction == "none":
        out_data = picked
        scale = -1.0
    elif reduction == "sum":
        out_data = picked.sum()
        scale = -1.0
    elif reduction == "mean":
        out_data = picked.mean()
        scale = -1.0 / batch
    else:
        raise AutogradError(f"unknown reduction {reduction!r}")

    def backward(grad: np.ndarray):
        grad = np.real(grad)
        full = np.zeros_like(log_probs.data)
        if reduction == "none":
            full[rows, targets] = scale * grad
        else:
            full[rows, targets] = scale * float(grad)
            if reduction == "mean":
                pass  # scale already includes the 1/batch factor
        return (full,)

    return Tensor._make(np.asarray(out_data), (log_probs,), backward, "nll_loss")


def cross_entropy(logits: ArrayLike, targets: Union[Sequence[int], np.ndarray], reduction: str = "mean") -> Tensor:
    """Cross-entropy loss: ``nll_loss(log_softmax(logits), targets)``."""
    return nll_loss(log_softmax(logits, axis=-1), targets, reduction=reduction)


def mse_loss(prediction: ArrayLike, target: ArrayLike, reduction: str = "mean") -> Tensor:
    """Mean-squared-error loss for real tensors."""
    prediction = _require_real(as_tensor(prediction), "mse_loss")
    target = as_tensor(target).detach()
    diff = prediction - target
    squared = diff * diff
    if reduction == "none":
        return squared
    if reduction == "sum":
        return squared.sum()
    if reduction == "mean":
        return squared.mean()
    raise AutogradError(f"unknown reduction {reduction!r}")


def accuracy(log_probs: ArrayLike, targets: Union[Sequence[int], np.ndarray]) -> float:
    """Top-1 classification accuracy (plain float, no autodiff)."""
    log_probs = as_tensor(log_probs)
    targets = np.asarray(targets, dtype=np.int64)
    predictions = np.argmax(log_probs.data, axis=-1)
    if predictions.shape != targets.shape:
        raise AutogradError(f"prediction shape {predictions.shape} does not match targets {targets.shape}")
    return float(np.mean(predictions == targets))
