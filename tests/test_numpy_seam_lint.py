"""The numpy-seam import lint runs green as part of tier-1.

The lint itself lives in ``tools/check_numpy_seam.py`` (also runnable
standalone / in CI); this test keeps it enforced on every test run and
pins its own sensitivity with synthetic violations.
"""

from __future__ import annotations

import ast
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_numpy_seam  # noqa: E402


def test_repository_is_clean():
    problems = check_numpy_seam.run_checks()
    assert problems == [], "\n".join(problems)


def test_all_listed_modules_exist():
    for relative in check_numpy_seam.NUMPY_FREE_MODULES + check_numpy_seam.SEAM_MODULES:
        assert (check_numpy_seam.SRC_ROOT / relative).is_file(), relative


def test_detects_numpy_import_in_strict_module(tmp_path):
    bad = tmp_path / "kernels.py"
    bad.write_text("import numpy as np\n")
    assert check_numpy_seam.check_numpy_free(bad)
    bad.write_text("from numpy import exp\n")
    assert check_numpy_seam.check_numpy_free(bad)
    bad.write_text("from math import prod\n")
    assert not check_numpy_seam.check_numpy_free(bad)


def test_detects_denied_compute_on_seam_module(tmp_path):
    bad = tmp_path / "module.py"
    bad.write_text(
        textwrap.dedent(
            """
            import numpy as np

            def f(x):
                return np.exp(x)
            """
        )
    )
    problems = check_numpy_seam.check_seam_module(bad)
    assert len(problems) == 1 and "np.exp" in problems[0]


def test_host_only_pragma_exempts_line(tmp_path):
    ok = tmp_path / "module.py"
    ok.write_text(
        textwrap.dedent(
            """
            import numpy as np

            def f(x):
                return np.exp(x)  # host-only path
            """
        )
    )
    assert check_numpy_seam.check_seam_module(ok) == []


def test_creation_and_validation_calls_allowed(tmp_path):
    ok = tmp_path / "module.py"
    ok.write_text(
        textwrap.dedent(
            """
            import numpy as np

            def f(x):
                return np.asarray(x, dtype=np.float64).reshape(-1)
            """
        )
    )
    assert check_numpy_seam.check_seam_module(ok) == []


def test_kernels_module_parses_and_is_numpy_free():
    kernels = check_numpy_seam.SRC_ROOT / "repro/arrays/kernels.py"
    tree = ast.parse(kernels.read_text())
    assert check_numpy_seam._numpy_aliases(tree) == set()
