"""Tests for linear-algebra utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NotUnitaryError, ShapeError
from repro.utils.linalg import (
    apply_two_mode_left,
    apply_two_mode_right,
    assert_unitary,
    condition_number,
    embed_two_mode_block,
    fidelity,
    frobenius_distance,
    global_phase_aligned,
    is_unitary,
    random_complex_matrix,
    random_unitary,
    relative_frobenius_distance,
    svd_decompose,
    svd_reconstruct,
    unitarity_deviation,
)


class TestRandomUnitary:
    def test_is_unitary(self):
        for n in (1, 2, 5, 16):
            assert is_unitary(random_unitary(n, rng=n))

    def test_reproducible_with_seed(self):
        assert np.allclose(random_unitary(4, rng=3), random_unitary(4, rng=3))

    def test_different_seeds_differ(self):
        assert not np.allclose(random_unitary(4, rng=1), random_unitary(4, rng=2))

    def test_rejects_nonpositive_dimension(self):
        with pytest.raises(ValueError):
            random_unitary(0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_always_unitary(self, n, seed):
        assert is_unitary(random_unitary(n, rng=seed))


class TestUnitarityChecks:
    def test_identity_is_unitary(self):
        assert is_unitary(np.eye(4))

    def test_non_square_raises(self):
        with pytest.raises(ShapeError):
            is_unitary(np.ones((2, 3)))

    def test_scaled_identity_not_unitary(self):
        assert not is_unitary(2.0 * np.eye(3))

    def test_assert_unitary_raises_with_deviation(self):
        with pytest.raises(NotUnitaryError):
            assert_unitary(np.eye(3) * 1.01)

    def test_unitarity_deviation_zero_for_unitary(self):
        assert unitarity_deviation(random_unitary(5, rng=0)) < 1e-10

    def test_unitarity_deviation_positive_for_non_unitary(self):
        assert unitarity_deviation(1.1 * np.eye(3)) > 0.1


class TestDistances:
    def test_fidelity_identity(self):
        u = random_unitary(6, rng=1)
        assert fidelity(u, u) == pytest.approx(1.0)

    def test_fidelity_global_phase_invariant(self):
        u = random_unitary(6, rng=2)
        assert fidelity(np.exp(1j * 0.7) * u, u) == pytest.approx(1.0)

    def test_fidelity_lower_for_different_unitaries(self):
        a, b = random_unitary(6, rng=3), random_unitary(6, rng=4)
        assert fidelity(a, b) < 0.95

    def test_fidelity_shape_mismatch(self):
        with pytest.raises(ShapeError):
            fidelity(np.eye(2), np.eye(3))

    def test_frobenius_distance_zero_and_symmetry(self):
        a, b = random_unitary(4, rng=5), random_unitary(4, rng=6)
        assert frobenius_distance(a, a) == pytest.approx(0.0)
        assert frobenius_distance(a, b) == pytest.approx(frobenius_distance(b, a))

    def test_relative_frobenius_distance_scale(self):
        a = np.eye(3)
        assert relative_frobenius_distance(1.1 * a, a) == pytest.approx(0.1, rel=1e-6)

    def test_relative_frobenius_zero_reference(self):
        assert relative_frobenius_distance(np.zeros((2, 2)), np.zeros((2, 2))) == 0.0
        assert relative_frobenius_distance(np.eye(2), np.zeros((2, 2))) == np.inf

    def test_global_phase_aligned_removes_phase(self):
        u = random_unitary(4, rng=8)
        rotated = np.exp(1j * 1.3) * u
        aligned = global_phase_aligned(rotated, u)
        assert np.allclose(aligned, u)


class TestSVD:
    def test_reconstruction_square(self):
        m = random_complex_matrix(5, 5, rng=0)
        u, s, vh = svd_decompose(m)
        assert np.allclose(svd_reconstruct(u, s, vh), m)

    def test_reconstruction_rectangular(self):
        m = random_complex_matrix(3, 7, rng=1)
        u, s, vh = svd_decompose(m)
        assert u.shape == (3, 3) and vh.shape == (7, 7) and s.shape == (3,)
        assert np.allclose(svd_reconstruct(u, s, vh), m)

    def test_factors_are_unitary(self):
        m = random_complex_matrix(6, 4, rng=2)
        u, _, vh = svd_decompose(m)
        assert is_unitary(u) and is_unitary(vh)

    def test_singular_values_nonnegative_sorted(self):
        m = random_complex_matrix(5, 5, rng=3)
        _, s, _ = svd_decompose(m)
        assert np.all(s >= 0) and np.all(np.diff(s) <= 0)

    def test_reconstruct_rejects_bad_singular_length(self):
        m = random_complex_matrix(4, 4, rng=4)
        u, s, vh = svd_decompose(m)
        with pytest.raises(ShapeError):
            svd_reconstruct(u, s[:-1], vh)

    def test_rejects_non_2d(self):
        with pytest.raises(ShapeError):
            svd_decompose(np.zeros(3))


class TestTwoModeOps:
    def test_embed_matches_apply_left(self):
        matrix = random_complex_matrix(5, 5, rng=9)
        block = random_unitary(2, rng=10)
        embedded = embed_two_mode_block(5, 2, block)
        assert np.allclose(apply_two_mode_left(matrix, 2, block), embedded @ matrix)

    def test_embed_matches_apply_right(self):
        matrix = random_complex_matrix(5, 5, rng=11)
        block = random_unitary(2, rng=12)
        embedded = embed_two_mode_block(5, 1, block)
        assert np.allclose(apply_two_mode_right(matrix, 1, block), matrix @ embedded)

    def test_embed_rejects_out_of_range_mode(self):
        with pytest.raises(IndexError):
            embed_two_mode_block(4, 3, np.eye(2))

    def test_embed_rejects_bad_block_shape(self):
        with pytest.raises(ShapeError):
            embed_two_mode_block(4, 0, np.eye(3))


class TestConditionNumber:
    def test_identity(self):
        assert condition_number(np.eye(4)) == pytest.approx(1.0)

    def test_unitary(self):
        assert condition_number(random_unitary(5, rng=13)) == pytest.approx(1.0)

    def test_singular(self):
        assert condition_number(np.diag([1.0, 0.0])) == np.inf
