"""Tests for serialization helpers."""

import dataclasses

import numpy as np
import pytest

from repro.utils.serialization import (
    format_table,
    load_arrays,
    load_json,
    save_arrays,
    save_json,
    to_jsonable,
)


@dataclasses.dataclass
class _Sample:
    name: str
    values: np.ndarray


def test_to_jsonable_handles_arrays_and_dataclasses():
    payload = to_jsonable(_Sample(name="x", values=np.arange(3)))
    assert payload == {"name": "x", "values": [0, 1, 2]}


def test_to_jsonable_complex_array_roundtrip_structure():
    payload = to_jsonable(np.array([1 + 2j]))
    assert payload["__complex_array__"] is True
    assert payload["real"] == [1.0] and payload["imag"] == [2.0]


def test_to_jsonable_scalars():
    assert to_jsonable(np.float64(1.5)) == 1.5
    assert to_jsonable(np.int64(3)) == 3
    assert to_jsonable(complex(1, 2)) == {"real": 1.0, "imag": 2.0, "__complex__": True}


def test_save_and_load_json(tmp_path):
    path = tmp_path / "out" / "result.json"
    save_json({"a": np.array([1.0, 2.0]), "b": 3}, path)
    loaded = load_json(path)
    assert loaded == {"a": [1.0, 2.0], "b": 3}


def test_save_and_load_arrays(tmp_path):
    path = tmp_path / "arrays.npz"
    save_arrays(path, x=np.arange(4), y=np.eye(2))
    loaded = load_arrays(path)
    assert np.array_equal(loaded["x"], np.arange(4))
    assert np.array_equal(loaded["y"], np.eye(2))


def test_format_table_alignment_and_floats():
    table = format_table(["name", "value"], [["a", 1.23456], ["bb", 2]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "1.2346" in table
    assert lines[0].startswith("name")


def test_format_table_empty_rows():
    table = format_table(["col"], [])
    assert "col" in table
