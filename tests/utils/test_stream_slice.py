"""StreamSlice: compact ``(seed, count)`` recipes for spawned child streams."""

import pickle

import numpy as np
import pytest

from repro.utils.rng import StreamSlice, materialize_streams, spawn_rngs


class TestRoundTrip:
    def test_rebuilt_generators_bit_identical(self):
        generators = spawn_rngs(42, 8)
        slice_ = StreamSlice.from_generators(generators)
        assert slice_ is not None
        assert len(slice_) == 8
        rebuilt = slice_.generators()
        for original, copy in zip(generators, rebuilt):
            assert original.bit_generator.state == copy.bit_generator.state
            np.testing.assert_array_equal(
                original.standard_normal(16), copy.standard_normal(16)
            )

    def test_sub_run_keeps_spawn_offsets(self):
        """A chunk from the middle of a spawn run replays its exact streams."""
        generators = spawn_rngs(7, 10)
        slice_ = StreamSlice.from_generators(generators[4:8])
        assert slice_ is not None
        assert slice_.first == 4 and slice_.count == 4
        for original, copy in zip(generators[4:8], slice_.generators()):
            assert original.bit_generator.state == copy.bit_generator.state

    def test_pickle_round_trip_small(self):
        generators = spawn_rngs(3, 250)
        slice_ = StreamSlice.from_generators(generators)
        payload = pickle.dumps(slice_)
        # The whole point: O(100) bytes per chunk, not per generator.
        assert len(payload) < 1024
        assert len(payload) < len(pickle.dumps(generators)) / 20
        restored = pickle.loads(payload)
        for original, copy in zip(generators, restored.generators()):
            assert original.bit_generator.state == copy.bit_generator.state

    def test_materialize_streams_both_forms(self):
        generators = spawn_rngs(11, 3)
        slice_ = StreamSlice.from_generators(generators)
        from_slice = materialize_streams(slice_)
        passthrough = materialize_streams(generators)
        assert passthrough == generators  # unchanged, as a list
        for original, copy in zip(generators, from_slice):
            assert original.bit_generator.state == copy.bit_generator.state


class TestRefusals:
    """from_generators must return None for anything not provably equivalent."""

    def test_consumed_generator_refused(self):
        generators = spawn_rngs(1, 4)
        generators[2].standard_normal()
        assert StreamSlice.from_generators(generators) is None

    def test_consumed_generator_accepted_when_trusted(self):
        """trust_fresh skips the state audit (the scheduler just spawned them)."""
        generators = spawn_rngs(1, 4)
        slice_ = StreamSlice.from_generators(generators, trust_fresh=True)
        assert slice_ is not None
        generators[2].standard_normal()
        assert StreamSlice.from_generators(generators, trust_fresh=True) is not None

    def test_non_contiguous_run_refused(self):
        generators = spawn_rngs(1, 6)
        assert StreamSlice.from_generators(generators[::2]) is None

    def test_mixed_parents_refused(self):
        assert StreamSlice.from_generators(spawn_rngs(1, 2) + spawn_rngs(2, 2)) is None

    def test_unspawned_generator_refused(self):
        # A root generator has no spawn key: nothing to name it by.
        assert StreamSlice.from_generators([np.random.default_rng(5)]) is None

    def test_foreign_object_refused(self):
        assert StreamSlice.from_generators([object()]) is None

    def test_empty_run_refused(self):
        assert StreamSlice.from_generators([]) is None

    def test_spawned_from_generator_parent_round_trips(self):
        """Children of Generator.spawn (not just SeedSequence) compress too."""
        parent = np.random.default_rng(9)
        children = spawn_rngs(parent, 3)
        slice_ = StreamSlice.from_generators(children)
        # Generator parents carry their own seed sequence, so children of a
        # *seeded* root are still addressable by entropy + spawn key.
        if slice_ is not None:
            for original, copy in zip(children, slice_.generators()):
                assert original.bit_generator.state == copy.bit_generator.state
