"""Tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.utils.validation import (
    as_complex_array,
    as_float_array,
    check_in_range,
    check_index,
    check_lengths_match,
    check_matrix_shape,
    check_positive,
    check_probability_vector,
    check_square_matrix,
)


def test_as_complex_array_converts_lists():
    arr = as_complex_array([[1, 2], [3, 4]])
    assert arr.dtype == np.complex128 and arr.shape == (2, 2)


def test_as_complex_array_rejects_strings():
    with pytest.raises(ShapeError):
        as_complex_array("not numeric")


def test_as_float_array_converts():
    assert as_float_array([1, 2, 3]).dtype == np.float64


def test_as_float_array_rejects_complex():
    with pytest.raises(ShapeError):
        as_float_array([1 + 2j])


def test_check_square_matrix_accepts_square():
    m = np.eye(3)
    assert check_square_matrix(m) is not None


@pytest.mark.parametrize("shape", [(2, 3), (3,), (2, 2, 2)])
def test_check_square_matrix_rejects(shape):
    with pytest.raises(ShapeError):
        check_square_matrix(np.zeros(shape))


def test_check_matrix_shape():
    check_matrix_shape(np.zeros((2, 5)), (2, 5))
    with pytest.raises(ShapeError):
        check_matrix_shape(np.zeros((2, 5)), (5, 2))


def test_check_positive():
    assert check_positive(1.5) == 1.5
    with pytest.raises(ValueError):
        check_positive(0.0)
    assert check_positive(0.0, allow_zero=True) == 0.0
    with pytest.raises(ValueError):
        check_positive(-1.0, allow_zero=True)


def test_check_in_range():
    assert check_in_range(0.5, 0.0, 1.0) == 0.5
    with pytest.raises(ValueError):
        check_in_range(1.5, 0.0, 1.0)


def test_check_probability_vector_valid():
    check_probability_vector(np.array([0.25, 0.25, 0.5]))


def test_check_probability_vector_rejects_negative():
    with pytest.raises(ValueError):
        check_probability_vector(np.array([-0.1, 1.1]))


def test_check_probability_vector_rejects_unnormalized():
    with pytest.raises(ValueError):
        check_probability_vector(np.array([0.3, 0.3]))


def test_check_probability_vector_rejects_matrix():
    with pytest.raises(ShapeError):
        check_probability_vector(np.eye(2))


def test_check_index():
    assert check_index(2, 5) == 2
    with pytest.raises(IndexError):
        check_index(5, 5)
    with pytest.raises(IndexError):
        check_index(-1, 5)


def test_check_lengths_match():
    check_lengths_match([1, 2], [3, 4])
    with pytest.raises(ShapeError):
        check_lengths_match([1, 2], [3])
