"""Tests for RNG handling helpers."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


def test_ensure_rng_from_seed_is_reproducible():
    a = ensure_rng(42).standard_normal(5)
    b = ensure_rng(42).standard_normal(5)
    assert np.allclose(a, b)


def test_ensure_rng_passthrough_generator():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_ensure_rng_accepts_seed_sequence():
    seq = np.random.SeedSequence(3)
    gen = ensure_rng(seq)
    assert isinstance(gen, np.random.Generator)


def test_ensure_rng_rejects_bad_type():
    with pytest.raises(TypeError):
        ensure_rng("not-a-seed")


def test_spawn_rngs_count_and_independence():
    children = spawn_rngs(0, 4)
    assert len(children) == 4
    draws = [gen.standard_normal() for gen in children]
    assert len(set(np.round(draws, 12))) == 4


def test_spawn_rngs_reproducible_from_seed():
    first = [g.standard_normal() for g in spawn_rngs(7, 3)]
    second = [g.standard_normal() for g in spawn_rngs(7, 3)]
    assert np.allclose(first, second)


def test_spawn_rngs_rejects_negative_count():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_spawn_rngs_zero_count():
    assert spawn_rngs(0, 0) == []
