"""Tests for RNG handling helpers."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


def test_ensure_rng_from_seed_is_reproducible():
    a = ensure_rng(42).standard_normal(5)
    b = ensure_rng(42).standard_normal(5)
    assert np.allclose(a, b)


def test_ensure_rng_passthrough_generator():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_ensure_rng_accepts_seed_sequence():
    seq = np.random.SeedSequence(3)
    gen = ensure_rng(seq)
    assert isinstance(gen, np.random.Generator)


def test_ensure_rng_rejects_bad_type():
    with pytest.raises(TypeError):
        ensure_rng("not-a-seed")


def test_spawn_rngs_count_and_independence():
    children = spawn_rngs(0, 4)
    assert len(children) == 4
    draws = [gen.standard_normal() for gen in children]
    assert len(set(np.round(draws, 12))) == 4


def test_spawn_rngs_reproducible_from_seed():
    first = [g.standard_normal() for g in spawn_rngs(7, 3)]
    second = [g.standard_normal() for g in spawn_rngs(7, 3)]
    assert np.allclose(first, second)


def test_spawn_rngs_rejects_negative_count():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_spawn_rngs_zero_count():
    assert spawn_rngs(0, 0) == []


def test_spawn_rngs_uses_seed_sequence_spawning():
    """Regression: children must come from SeedSequence.spawn(), not from
    int64 draws of the parent (which had a birthday-collision risk)."""
    children = spawn_rngs(123, 3)
    reference = [np.random.default_rng(c) for c in np.random.SeedSequence(123).spawn(3)]
    for child, ref in zip(children, reference):
        assert np.array_equal(child.standard_normal(4), ref.standard_normal(4))


def test_spawn_rngs_from_seed_sequence_object():
    seq = np.random.SeedSequence(9)
    first = [g.standard_normal() for g in spawn_rngs(seq, 2)]
    # Spawning again from the same (stateful) SeedSequence yields fresh streams.
    second = [g.standard_normal() for g in spawn_rngs(seq, 2)]
    assert not np.allclose(first, second)


def test_spawn_rngs_generator_parent_gives_fresh_children_per_call():
    parent = np.random.default_rng(5)
    first = [g.standard_normal() for g in spawn_rngs(parent, 2)]
    second = [g.standard_normal() for g in spawn_rngs(parent, 2)]
    assert not np.allclose(first, second)


def test_spawn_rngs_rejects_bad_type():
    with pytest.raises(TypeError):
        spawn_rngs("not-a-seed", 2)
