"""The trajectory tool tolerates gaps in the ``BENCH_prN`` artifact history.

Not every PR records a benchmark artifact (PR 8 shipped none), so the
label sequence at the repo root has holes.  ``missing_labels`` names them
and ``main``/``--check`` warn instead of failing — a gap is history, not a
regression — while genuinely broken artifacts are still skipped loudly.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import trajectory  # noqa: E402  (repo benchmarks/ module, not a package)


def _artifact(label: str, speedup: float = 2.0) -> dict:
    return {"label": label, "scenarios": {"mc_engine": {"speedup": speedup}}}


def _write(directory: Path, label: str, **kwargs) -> None:
    payload = _artifact(label, **kwargs)
    (directory / f"BENCH_{label}.json").write_text(json.dumps(payload))


class TestMissingLabels:
    def test_contiguous_history_has_no_gaps(self):
        artifacts = {f"pr{n}": _artifact(f"pr{n}") for n in (4, 5, 6)}
        assert trajectory.missing_labels(artifacts) == []

    def test_gap_is_named(self):
        artifacts = {f"pr{n}": _artifact(f"pr{n}") for n in (4, 5, 6, 7, 9)}
        assert trajectory.missing_labels(artifacts) == ["pr8"]

    def test_multiple_gaps(self):
        artifacts = {f"pr{n}": _artifact(f"pr{n}") for n in (4, 7, 10)}
        assert trajectory.missing_labels(artifacts) == [
            "pr5",
            "pr6",
            "pr8",
            "pr9",
        ]

    def test_non_pr_labels_are_ignored(self):
        artifacts = {
            "pr4": _artifact("pr4"),
            "nightly": _artifact("nightly"),
            "pr6": _artifact("pr6"),
        }
        assert trajectory.missing_labels(artifacts) == ["pr5"]

    def test_single_or_empty_history_has_no_gaps(self):
        assert trajectory.missing_labels({}) == []
        assert trajectory.missing_labels({"pr4": _artifact("pr4")}) == []


class TestMainWarnsOnGaps:
    def test_check_warns_but_passes_across_a_gap(self, tmp_path, capsys):
        for label in ("pr4", "pr5", "pr7"):
            _write(tmp_path, label)
        code = trajectory.main(["--dir", str(tmp_path), "--check"])
        captured = capsys.readouterr()
        assert code == 0
        assert "no BENCH artifact for pr6" in captured.err
        assert "regression gate passed" in captured.out

    def test_no_warning_without_gaps(self, tmp_path, capsys):
        for label in ("pr4", "pr5"):
            _write(tmp_path, label)
        assert trajectory.main(["--dir", str(tmp_path)]) == 0
        assert "no BENCH artifact" not in capsys.readouterr().err

    def test_corrupt_artifact_still_skipped_loudly(self, tmp_path, capsys):
        _write(tmp_path, "pr4")
        (tmp_path / "BENCH_pr5.json").write_text("{broken")
        assert trajectory.main(["--dir", str(tmp_path)]) == 0
        assert "skipping BENCH_pr5.json" in capsys.readouterr().err

    def test_repo_root_artifacts_have_exactly_the_pr8_gap(self):
        artifacts = trajectory.load_artifacts(trajectory.REPO_ROOT)
        assert trajectory.missing_labels(artifacts) == ["pr8"]


class TestToleranceFloors:
    def test_parity_floor_fails_below_tolerance(self):
        artifacts = {
            "pr10": {
                "label": "pr10",
                "scenarios": {"adaptive_dispatch": {"speedup": 0.4}},
            }
        }
        failures = trajectory.check_regressions(artifacts, tolerance=0.6)
        assert any("parity floor" in failure for failure in failures)

    def test_parity_floor_passes_at_one(self):
        artifacts = {
            "pr10": {
                "label": "pr10",
                "scenarios": {
                    "adaptive_dispatch": {"speedup": 1.0, "small_shape_speedup": 1.0}
                },
            }
        }
        assert trajectory.check_regressions(artifacts, tolerance=0.6) == []

    def test_weighted_fleet_absolute_floor(self):
        artifacts = {
            "pr10": {
                "label": "pr10",
                "scenarios": {"weighted_fleet": {"speedup": 1.1}},
            }
        }
        failures = trajectory.check_regressions(artifacts, tolerance=0.6)
        assert any("absolute floor 1.30" in failure for failure in failures)
