"""Tests for optical gain elements."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.photonics import GainStage, OpticalAmplifier


class TestOpticalAmplifier:
    def test_power_gain_and_db(self):
        amp = OpticalAmplifier(gain=2.0)
        assert amp.power_gain == pytest.approx(4.0)
        assert amp.gain_db == pytest.approx(20 * np.log10(2.0))

    def test_unit_gain_is_identity(self):
        amp = OpticalAmplifier()
        assert np.allclose(amp.transfer_matrix(3), np.eye(3))

    def test_transfer_scales_field(self):
        amp = OpticalAmplifier(gain=3.0)
        assert np.allclose(amp.transfer(np.array([1.0, 2.0])), [3.0, 6.0])

    def test_rejects_nonpositive_gain(self):
        with pytest.raises(ConfigurationError):
            OpticalAmplifier(gain=0.0)

    def test_transfer_matrix_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            OpticalAmplifier().transfer_matrix(0)


class TestGainStage:
    def test_uniform_stage(self):
        stage = GainStage.uniform(2.0, 4)
        assert stage.size == 4
        assert np.allclose(stage.transfer_matrix(), 2.0 * np.eye(4))

    def test_per_output_gains(self):
        stage = GainStage(gains=(1.0, 2.0, 3.0))
        fields = np.ones((2, 3), dtype=complex)
        assert np.allclose(stage.apply(fields), [[1, 2, 3], [1, 2, 3]])

    def test_apply_rejects_wrong_length(self):
        with pytest.raises(ConfigurationError):
            GainStage.uniform(1.0, 3).apply(np.ones(4))

    def test_rejects_empty_or_nonpositive(self):
        with pytest.raises(ConfigurationError):
            GainStage(gains=())
        with pytest.raises(ConfigurationError):
            GainStage(gains=(1.0, -1.0))
