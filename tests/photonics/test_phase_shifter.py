"""Tests for the thermo-optic phase-shifter model."""

import numpy as np
import pytest

from repro.photonics import PhaseShifter, constants, phase_from_temperature, temperature_for_phase


class TestThermoOpticRelation:
    def test_phase_from_temperature_formula(self):
        delta_t = 10.0
        expected = (2 * np.pi * constants.DEFAULT_PHASE_SHIFTER_LENGTH / constants.DEFAULT_WAVELENGTH)
        expected *= constants.SILICON_THERMO_OPTIC_COEFFICIENT * delta_t
        assert phase_from_temperature(delta_t) == pytest.approx(expected)

    def test_roundtrip_with_temperature_for_phase(self):
        phase = 1.234
        assert phase_from_temperature(temperature_for_phase(phase)) == pytest.approx(phase)

    def test_linear_in_temperature_and_length(self):
        assert phase_from_temperature(2.0) == pytest.approx(2 * phase_from_temperature(1.0))
        assert phase_from_temperature(1.0, length=2e-4) == pytest.approx(
            2 * phase_from_temperature(1.0, length=1e-4)
        )

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            phase_from_temperature(1.0, length=0.0)
        with pytest.raises(ValueError):
            temperature_for_phase(1.0, wavelength=-1.0)


class TestPhaseShifter:
    def test_transfer_is_pure_phase(self):
        ps = PhaseShifter(phase=0.7)
        assert abs(ps.transfer) == pytest.approx(1.0)
        assert np.angle(ps.transfer) == pytest.approx(0.7)

    def test_transfer_matrix_upper_arm_only(self):
        ps = PhaseShifter(phase=np.pi / 3)
        matrix = ps.transfer_matrix()
        assert matrix[0, 0] == pytest.approx(np.exp(1j * np.pi / 3))
        assert matrix[1, 1] == pytest.approx(1.0)
        assert matrix[0, 1] == 0 and matrix[1, 0] == 0

    def test_with_phase_and_phase_error(self):
        ps = PhaseShifter(phase=1.0)
        assert ps.with_phase(2.0).phase == 2.0
        assert ps.with_phase_error(0.1).phase == pytest.approx(1.1)
        assert ps.phase == 1.0  # frozen / immutable

    def test_drive_temperature_consistency(self):
        ps = PhaseShifter(phase=np.pi)
        assert phase_from_temperature(ps.drive_temperature) == pytest.approx(np.pi)

    def test_length_variation_scales_phase(self):
        ps = PhaseShifter(phase=1.0)
        longer = ps.with_length_variation(0.10)
        assert longer.phase == pytest.approx(1.10)
        assert longer.length == pytest.approx(ps.length * 1.10)

    def test_length_variation_rejects_nonphysical(self):
        with pytest.raises(ValueError):
            PhaseShifter(phase=1.0).with_length_variation(-1.5)

    def test_temperature_crosstalk_adds_phase(self):
        ps = PhaseShifter(phase=0.5)
        heated = ps.with_temperature_crosstalk(5.0)
        assert heated.phase == pytest.approx(0.5 + phase_from_temperature(5.0))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PhaseShifter(phase=0.0, length=-1.0)
