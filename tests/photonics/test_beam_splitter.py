"""Tests for the 2x2 beam-splitter model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import VariationModelError
from repro.photonics import BeamSplitter, constants


class TestIdealSplitter:
    def test_amplitudes(self):
        bs = BeamSplitter.ideal()
        assert bs.r00 == pytest.approx(1 / np.sqrt(2))
        assert bs.t01 == pytest.approx(1 / np.sqrt(2))
        assert bs.is_ideal and bs.is_symmetric

    def test_transfer_matrix_unitary(self):
        bs = BeamSplitter.ideal()
        matrix = bs.transfer_matrix()
        assert np.allclose(matrix.conj().T @ matrix, np.eye(2))

    def test_cross_coupling_has_pi_over_2_phase(self):
        matrix = BeamSplitter.ideal().transfer_matrix()
        assert np.angle(matrix[0, 1]) == pytest.approx(np.pi / 2)
        assert np.angle(matrix[1, 0]) == pytest.approx(np.pi / 2)

    def test_splitting_ratio_50_50(self):
        assert BeamSplitter.ideal().splitting_ratio == pytest.approx(0.5)


class TestImperfectSplitter:
    def test_symmetric_constructor(self):
        bs = BeamSplitter.symmetric(0.8)
        assert bs.r00 == 0.8 and bs.r11 == 0.8
        assert bs.t01 == pytest.approx(0.6)
        assert not bs.is_ideal

    def test_lossless_condition_enforced(self):
        with pytest.raises(VariationModelError):
            BeamSplitter(r00=0.8, t01=0.8)

    def test_rejects_out_of_range_amplitudes(self):
        with pytest.raises(VariationModelError):
            BeamSplitter(r00=1.2)
        with pytest.raises(VariationModelError):
            BeamSplitter(r00=-0.1)

    def test_from_reflectance_error(self):
        bs = BeamSplitter.from_reflectance_error(0.05)
        assert bs.r00 == pytest.approx(constants.IDEAL_SPLITTER_AMPLITUDE + 0.05)
        assert bs.is_symmetric

    def test_from_reflectance_error_clips(self):
        assert BeamSplitter.from_reflectance_error(1.0).r00 == 1.0
        assert BeamSplitter.from_reflectance_error(-1.0).r00 == 0.0

    def test_with_variation(self):
        bs = BeamSplitter.ideal().with_variation(0.02, -0.01)
        assert bs.r00 == pytest.approx(constants.IDEAL_SPLITTER_AMPLITUDE + 0.02)
        assert bs.r11 == pytest.approx(constants.IDEAL_SPLITTER_AMPLITUDE - 0.01)

    def test_symmetric_splitter_conserves_power(self):
        assert BeamSplitter.symmetric(0.9).power_conservation_error() < 1e-12

    def test_asymmetric_splitter_breaks_unitarity(self):
        bs = BeamSplitter(r00=0.9, r11=0.5)
        assert bs.power_conservation_error() > 0.01

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_property_symmetric_always_unitary(self, reflectance):
        """Any symmetric lossless splitter must be unitary (power conserving)."""
        assert BeamSplitter.symmetric(reflectance).power_conservation_error() < 1e-9
