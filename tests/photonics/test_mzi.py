"""Tests for the MZI device model: Eqs. (1), (3), (4), (5) of the paper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics import (
    MZI,
    BeamSplitter,
    PhaseShifter,
    mzi_element_relative_deviation,
    mzi_first_order_deviation,
    mzi_jacobian,
    mzi_relative_deviation,
    mzi_transfer,
    mzi_transfer_nonideal,
)

angles = st.floats(min_value=0.0, max_value=2 * np.pi, allow_nan=False)


class TestIdealTransferMatrix:
    def test_matches_paper_eq1_literal(self):
        theta, phi = 1.2, 0.4
        t = mzi_transfer(theta, phi)
        e_t, e_p = np.exp(1j * theta), np.exp(1j * phi)
        expected = np.array(
            [
                [e_p * (e_t - 1) / 2, 1j * (e_t + 1) / 2],
                [1j * e_p * (e_t + 1) / 2, -(e_t - 1) / 2],
            ]
        )
        assert np.allclose(t, expected)

    @settings(max_examples=50, deadline=None)
    @given(angles, angles)
    def test_property_always_unitary(self, theta, phi):
        t = mzi_transfer(theta, phi)
        assert np.allclose(t.conj().T @ t, np.eye(2), atol=1e-12)

    def test_cross_state_at_theta_zero(self):
        t = mzi_transfer(0.0, 0.0)
        assert abs(t[0, 0]) == pytest.approx(0.0)
        assert abs(t[0, 1]) == pytest.approx(1.0)

    def test_bar_state_at_theta_pi(self):
        t = mzi_transfer(np.pi, 0.0)
        assert abs(t[0, 0]) == pytest.approx(1.0)
        assert abs(t[0, 1]) == pytest.approx(0.0)

    def test_vectorized_broadcast(self):
        thetas = np.linspace(0, np.pi, 5)
        out = mzi_transfer(thetas, 0.3)
        assert out.shape == (5, 2, 2)
        assert np.allclose(out[2], mzi_transfer(thetas[2], 0.3))


class TestNonIdealTransferMatrix:
    def test_reduces_to_ideal_for_5050(self):
        r = 1 / np.sqrt(2)
        assert np.allclose(mzi_transfer_nonideal(1.1, 0.6, r), mzi_transfer(1.1, 0.6))

    def test_matches_paper_eq5_literal(self):
        theta, phi, r1, r2 = 0.9, 1.7, 0.75, 0.65
        t1, t2 = np.sqrt(1 - r1**2), np.sqrt(1 - r2**2)
        out = mzi_transfer_nonideal(theta, phi, r1, r2=r2)
        e_t, e_p, e_b = np.exp(1j * theta), np.exp(1j * phi), np.exp(1j * (theta + phi))
        expected = np.array(
            [
                [r1 * r2 * e_b - t1 * t2 * e_p, 1j * r2 * t1 * e_t + 1j * t2 * r1],
                [1j * t2 * r1 * e_b + 1j * t1 * r2 * e_p, -t1 * t2 * e_t + r1 * r2],
            ]
        )
        assert np.allclose(out, expected)

    @settings(max_examples=30, deadline=None)
    @given(angles, angles, st.floats(min_value=0.1, max_value=0.99))
    def test_property_symmetric_splitters_stay_unitary(self, theta, phi, r):
        t = mzi_transfer_nonideal(theta, phi, r)
        assert np.allclose(t.conj().T @ t, np.eye(2), atol=1e-10)

    def test_imbalanced_splitter_limits_extinction(self):
        """With imperfect splitters the MZI can no longer fully route power (finite extinction)."""
        leak = abs(mzi_transfer_nonideal(0.0, 0.0, 0.6)[0, 0])
        assert leak > 0.01


class TestSensitivityModel:
    def test_jacobian_matches_finite_difference(self):
        theta, phi, eps = 0.8, 2.1, 1e-7
        d_theta, d_phi = mzi_jacobian(theta, phi)
        num_theta = (mzi_transfer(theta + eps, phi) - mzi_transfer(theta - eps, phi)) / (2 * eps)
        num_phi = (mzi_transfer(theta, phi + eps) - mzi_transfer(theta, phi - eps)) / (2 * eps)
        assert np.allclose(d_theta, num_theta, atol=1e-6)
        assert np.allclose(d_phi, num_phi, atol=1e-6)

    def test_first_order_deviation_small_perturbation(self):
        theta, phi = 1.0, 0.5
        delta = 1e-4
        approx = mzi_first_order_deviation(theta, phi, delta, delta)
        exact = mzi_transfer(theta + delta, phi + delta) - mzi_transfer(theta, phi)
        assert np.allclose(approx, exact, atol=1e-7)

    def test_relative_deviation_eq4_consistency(self):
        """Eq. (4) is Eq. (3) with dtheta = K*theta, dphi = K*phi."""
        theta, phi, k = 1.3, 2.2, 0.05
        assert np.allclose(
            mzi_relative_deviation(theta, phi, k),
            mzi_first_order_deviation(theta, phi, k * theta, k * phi),
        )

    def test_element_relative_deviation_monotonic_trend(self):
        """The paper's Fig. 2 claim: deviation grows with the tuned angles."""
        small = mzi_element_relative_deviation(0.5, 0.5, 0.05)
        large = mzi_element_relative_deviation(3.0, 3.0, 0.05)
        assert np.nansum(large) > np.nansum(small)

    def test_element_relative_deviation_nan_at_zeros(self):
        out = mzi_element_relative_deviation(0.0, 0.0, 0.05)
        assert np.isnan(out[0, 0])  # |T11| = 0 at theta = 0

    def test_zero_k_gives_zero_deviation(self):
        out = mzi_relative_deviation(1.0, 1.0, 0.0)
        assert np.allclose(out, 0.0)


class TestMZIDevice:
    def test_component_composition_matches_eq1(self):
        device = MZI.from_angles(1.4, 0.9)
        assert np.allclose(device.transfer_matrix(), mzi_transfer(1.4, 0.9))

    def test_component_composition_matches_eq5(self):
        device = MZI(
            theta_shifter=PhaseShifter(phase=0.7),
            phi_shifter=PhaseShifter(phase=1.9),
            splitter_in=BeamSplitter.symmetric(0.8),
            splitter_out=BeamSplitter.symmetric(0.6),
        )
        assert np.allclose(
            device.transfer_matrix(), mzi_transfer_nonideal(0.7, 1.9, 0.8, r2=0.6)
        )

    def test_bar_and_cross_states(self):
        assert MZI.bar_state().power_transmission()[0, 0] == pytest.approx(1.0)
        assert MZI.cross_state().power_transmission()[0, 1] == pytest.approx(1.0)

    def test_angles_properties(self):
        device = MZI.from_angles(0.3, 0.6)
        assert device.theta == 0.3 and device.phi == 0.6 and device.angles == (0.3, 0.6)
        assert device.is_ideal

    def test_with_phase_errors(self):
        device = MZI.from_angles(1.0, 2.0).with_phase_errors(0.1, -0.2)
        assert device.theta == pytest.approx(1.1)
        assert device.phi == pytest.approx(1.8)

    def test_with_splitter_errors(self):
        device = MZI.from_angles(1.0, 2.0).with_splitter_errors(0.05, -0.05)
        assert not device.is_ideal
        assert device.splitter_in.r00 == pytest.approx(1 / np.sqrt(2) + 0.05)

    def test_with_variations_combined(self):
        device = MZI.from_angles(1.0, 1.0).with_variations(0.1, 0.1, 0.02, 0.02)
        assert device.theta == pytest.approx(1.1)
        assert device.splitter_out.r00 == pytest.approx(1 / np.sqrt(2) + 0.02)

    def test_insertion_error_zero_for_symmetric(self):
        assert MZI.from_angles(1.0, 1.0).insertion_error() < 1e-12
        perturbed = MZI.from_angles(1.0, 1.0).with_splitter_errors(0.1, 0.1)
        assert perturbed.insertion_error() < 1e-12  # symmetric splitters stay unitary

    def test_power_transmission_rows_sum_to_one_when_ideal(self):
        power = MZI.from_angles(0.77, 1.23).power_transmission()
        assert np.allclose(power.sum(axis=1), 1.0)
