"""Tests for EXP 3 — noise-aware training vs. baseline (the robust experiment).

The heavy pieces (two trainings + the Monte Carlo evaluation sweep) run once
per pytest session on the registry's smoke configuration; the acceptance
margin and the serial/multiprocess bit-identity are asserted on that shared
result.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments import Exp3Config, run_exp3
from repro.experiments.exp3_robust_training import BASELINE, robust_label
from repro.experiments.registry import get_experiment


@pytest.fixture(scope="session")
def smoke_config():
    return get_experiment("robust").smoke_config


@pytest.fixture(scope="session")
def exp3_result(smoke_config):
    """Serial smoke run (the reference result)."""
    return run_exp3(smoke_config)


@pytest.fixture(scope="session")
def exp3_result_workers(smoke_config):
    """The same smoke run sharded across 2 worker processes."""
    return run_exp3(dataclasses.replace(smoke_config, workers=2))


class TestRobustnessRecovery:
    def test_noise_aware_beats_baseline_at_trained_sigma(self, exp3_result, smoke_config):
        """The acceptance margin: >= 5% mean-accuracy recovery at the trained sigma."""
        sigma = smoke_config.train_sigmas[0]
        recovery = exp3_result.recovery_at(sigma)
        assert recovery >= 0.05, (
            f"noise-aware training recovered only {100 * recovery:.2f}% accuracy "
            f"at sigma {sigma} (expected >= 5%)"
        )

    def test_noise_aware_does_not_sacrifice_nominal_accuracy(self, exp3_result, smoke_config):
        """Hardening must not cost more than a few percent of clean accuracy."""
        key = robust_label(smoke_config.train_sigmas[0])
        assert (
            exp3_result.nominal_accuracy[key]
            >= exp3_result.nominal_accuracy[BASELINE] - 0.03
        )

    def test_robust_model_dominates_across_eval_sweep(self, exp3_result, smoke_config):
        """At and beyond the trained sigma the robust model should lead."""
        key = robust_label(smoke_config.train_sigmas[0])
        for sigma in smoke_config.eval_sigmas:
            if sigma >= smoke_config.train_sigmas[0]:
                assert exp3_result.mean_accuracy(key, sigma) > exp3_result.mean_accuracy(
                    BASELINE, sigma
                )

    def test_samples_have_requested_shape(self, exp3_result, smoke_config):
        for key in exp3_result.model_keys():
            for sigma in smoke_config.eval_sigmas:
                samples = exp3_result.accuracy_samples[key][sigma]
                assert samples.shape == (smoke_config.iterations,)
                assert np.all((samples >= 0.0) & (samples <= 1.0))

    def test_yields_share_the_baseline_spec(self, exp3_result):
        thresholds = {result.accuracy_threshold for result in exp3_result.yields.values()}
        assert len(thresholds) == 1
        assert exp3_result.yields[BASELINE].nominal_accuracy == exp3_result.nominal_accuracy[BASELINE]

    def test_max_tolerable_helpers(self, exp3_result, smoke_config):
        sigma = smoke_config.train_sigmas[0]
        improvement = exp3_result.max_tolerable_improvement(sigma)
        base = exp3_result.max_tolerable_sigma(BASELINE)
        robust = exp3_result.max_tolerable_sigma(robust_label(sigma))
        if base is None or robust is None:
            assert improvement is None
        else:
            assert improvement == pytest.approx(robust - base)
            assert improvement >= 0.0  # hardening must never shrink the tolerance

    def test_report_contents(self, exp3_result, smoke_config):
        report = exp3_result.report()
        assert "EXP 3" in report
        assert "accuracy recovery at trained sigma" in report
        assert "max tolerable sigma" in report
        assert robust_label(smoke_config.train_sigmas[0]) in report


class TestBackendInvariance:
    def test_bit_identical_across_serial_and_multiprocess(
        self, exp3_result, exp3_result_workers, smoke_config
    ):
        """Acceptance: the whole result is bit-identical for workers in {1, 2}.

        Training never touches the execution backend and the Monte Carlo
        engine spawns its child streams before scheduling, so every sample
        must match byte for byte.
        """
        for key in exp3_result.model_keys():
            assert exp3_result.nominal_accuracy[key] == exp3_result_workers.nominal_accuracy[key]
            for sigma in smoke_config.eval_sigmas:
                assert np.array_equal(
                    exp3_result.accuracy_samples[key][sigma],
                    exp3_result_workers.accuracy_samples[key][sigma],
                )
        for key in exp3_result.model_keys():
            assert np.array_equal(
                exp3_result.yields[key].yield_curve(),
                exp3_result_workers.yields[key].yield_curve(),
            )


class TestConfigValidation:
    def test_rejects_bad_train_sigmas(self):
        with pytest.raises(ValueError):
            Exp3Config(train_sigmas=())
        with pytest.raises(ValueError):
            Exp3Config(train_sigmas=(0.0,))
        with pytest.raises(ValueError):
            Exp3Config(train_sigmas=(0.01, 0.01))

    def test_rejects_bad_eval_sigmas_and_case(self):
        with pytest.raises(ValueError):
            Exp3Config(eval_sigmas=())
        with pytest.raises(ValueError):
            Exp3Config(case="thermal-only")

    def test_rejects_train_sigma_missing_from_eval_sweep(self):
        """Fail fast: the recovery report needs a baseline point per trained sigma."""
        with pytest.raises(ValueError, match="must appear in eval_sigmas"):
            Exp3Config(train_sigmas=(0.008,))

    def test_rejects_duplicate_eval_sigmas(self):
        with pytest.raises(ValueError, match="unique"):
            Exp3Config(train_sigmas=(0.0075,), eval_sigmas=(0.0, 0.0075, 0.0075))

    def test_rejects_out_of_range_yield_spec(self):
        with pytest.raises(ValueError, match="accuracy_margin"):
            Exp3Config(accuracy_margin=-0.1)
        with pytest.raises(ValueError, match="target_yield"):
            Exp3Config(target_yield=1.5)

    def test_recovery_at_unknown_sigma_raises(self, exp3_result):
        with pytest.raises(KeyError):
            exp3_result.recovery_at(0.123)


class TestBisectMode:
    def test_bisect_refines_the_yield_headline(self, smoke_config):
        config = dataclasses.replace(
            smoke_config, bisect=True, iterations=10, bisect_tolerance=2e-3
        )
        result = run_exp3(config)
        # run_exp3 legitimately skips the refinement for a model that
        # already passes at the largest evaluated sigma (degenerate
        # bracket); every other model must have one.
        expected = {
            key
            for key in result.model_keys()
            if (result.max_tolerable_sigma(key) or 0.0) < max(config.eval_sigmas)
        }
        assert set(result.bisections) == expected
        for key in sorted(result.bisections):
            bisection = result.bisections[key]
            refined = result.refined_max_tolerable_sigma(key)
            grid = result.max_tolerable_sigma(key)
            # The refinement never contradicts the coarse grid: it starts
            # from the grid's bracket and only tightens it.
            if grid is not None and refined is not None:
                assert refined >= grid - 1e-12
            # O(log) cost: edges plus halvings down to the tolerance.
            bracket = max(config.eval_sigmas) - (grid or 0.0)
            bound = 2 + int(np.ceil(np.log2(max(2.0, bracket / config.bisect_tolerance))))
            assert bisection.num_probes <= bound + 1
        assert "bisection-refined" in result.report()
