"""Tests for the EXP 1 (Fig. 4) and EXP 2 (Fig. 5) experiment runners."""

import numpy as np
import pytest

from repro.experiments import (
    EXP1_CASES,
    Exp1Config,
    Exp2Config,
    run_exp1,
    run_exp2,
    uncertainty_model_for_case,
)


class TestUncertaintyModelForCase:
    def test_case_switches(self):
        phs = uncertainty_model_for_case("phs", 0.1)
        assert phs.perturb_phases and not phs.perturb_splitters
        bes = uncertainty_model_for_case("bes", 0.1)
        assert bes.perturb_splitters and not bes.perturb_phases
        both = uncertainty_model_for_case("both", 0.1)
        assert both.sigma_phs == both.sigma_bes == 0.1

    def test_unknown_case(self):
        with pytest.raises(ValueError):
            uncertainty_model_for_case("all", 0.1)


@pytest.fixture(scope="module")
def exp1_result(small_task_module):
    config = Exp1Config(sigmas=(0.0, 0.05, 0.1), iterations=6, seed=1)
    return run_exp1(config, task=small_task_module)


@pytest.fixture(scope="module")
def small_task_module(request):
    # Reuse the session-scoped task fixture from conftest through a
    # module-scoped alias so the expensive runs below happen once.
    return request.getfixturevalue("small_task")


class TestExp1:
    def test_result_structure(self, exp1_result):
        assert set(exp1_result.results) == set(EXP1_CASES)
        for case in EXP1_CASES:
            assert len(exp1_result.results[case]) == 3
            assert exp1_result.mean_accuracy(case).shape == (3,)

    def test_zero_sigma_equals_nominal(self, exp1_result):
        for case in EXP1_CASES:
            assert exp1_result.mean_accuracy(case)[0] == pytest.approx(exp1_result.nominal_accuracy)

    def test_paper_shape_accuracy_collapses_with_sigma(self, exp1_result):
        """Fig. 4: accuracy falls steeply and approaches random guessing."""
        both = exp1_result.mean_accuracy("both")
        assert both[1] < exp1_result.nominal_accuracy - 0.2
        assert both[2] < 0.35

    def test_paper_shape_phs_hurts_more_than_bes(self, exp1_result):
        """Fig. 4: phase-shifter uncertainties dominate beam-splitter ones."""
        assert exp1_result.mean_accuracy("phs")[1] < exp1_result.mean_accuracy("bes")[1]

    def test_loss_and_saturation_helpers(self, exp1_result):
        loss = exp1_result.loss_at_sigma("both", 0.05)
        assert 0.0 < loss <= 1.0
        # First swept sigma where the mean accuracy falls below 50%: with the
        # steep collapse of Fig. 4 that is already the first non-zero sigma.
        saturation = exp1_result.saturation_sigma("both", threshold=0.5)
        assert saturation == 0.05
        # A threshold below any achievable accuracy is never reached.
        assert exp1_result.saturation_sigma("both", threshold=0.0) is None

    def test_report_mentions_paper_numbers(self, exp1_result):
        report = exp1_result.report()
        assert "69.98%" in report and "EXP 1" in report

    def test_reproducible_with_seed(self, small_task_module):
        config = Exp1Config(sigmas=(0.05,), cases=("both",), iterations=3, seed=9)
        a = run_exp1(config, task=small_task_module).mean_accuracy("both")
        b = run_exp1(config, task=small_task_module).mean_accuracy("both")
        assert np.allclose(a, b)


class TestExp2:
    @pytest.fixture(scope="class")
    def exp2_result(self, small_task_module):
        config = Exp2Config(iterations=3, seed=2)
        return run_exp2(config, task=small_task_module, mesh_names=["U_L2", "VH_L2"])

    def test_heatmap_structure(self, exp2_result):
        assert set(exp2_result.heatmaps) == {"U_L2", "VH_L2"}
        heatmap = exp2_result.heatmaps["VH_L2"]
        assert heatmap.accuracy_loss.shape == heatmap.zone_shape
        assert np.isfinite(heatmap.accuracy_loss).sum() > 0

    def test_vh_l2_zone_grid_is_8x8(self, exp2_result):
        """A 16-mode Clements mesh partitioned into 2x2 zones gives an 8x8 grid."""
        assert exp2_result.heatmaps["VH_L2"].zone_shape == (8, 8)

    def test_u_l2_zone_grid_smaller(self, exp2_result):
        """U_L2 is only 10x10 (output layer), so its zone grid is smaller."""
        rows, cols = exp2_result.heatmaps["U_L2"].zone_shape
        assert rows <= 5 and cols <= 5

    def test_paper_shape_losses_cluster_near_global_loss(self, exp2_result):
        """Fig. 5: zonal losses hover around the global-uncertainty loss."""
        global_loss = exp2_result.global_loss
        for heatmap in exp2_result.heatmaps.values():
            finite = heatmap.finite_losses()
            assert np.all(np.abs(finite - global_loss) < 0.35)

    def test_paper_shape_zone_impact_is_non_uniform(self, exp2_result):
        """Fig. 5: some zones reduce, others exacerbate the loss."""
        spreads = [h.spread for h in exp2_result.heatmaps.values()]
        assert max(spreads) > 0.0

    def test_report_contains_reference(self, exp2_result):
        report = exp2_result.report()
        assert "69.98%" in report and "EXP 2" in report

    def test_unknown_mesh_name_rejected(self, small_task_module):
        with pytest.raises(KeyError):
            run_exp2(Exp2Config(iterations=1), task=small_task_module, mesh_names=["U_L9"])


class TestVectorizedEquivalence:
    """The batched experiment paths reproduce the looped paths bit for bit."""

    def test_exp1_vectorized_matches_loop(self, small_task_module):
        base = Exp1Config(sigmas=(0.0, 0.05), cases=("both",), iterations=3, seed=5)
        fast = run_exp1(base, task=small_task_module)
        slow = run_exp1(
            Exp1Config(sigmas=(0.0, 0.05), cases=("both",), iterations=3, seed=5, vectorized=False),
            task=small_task_module,
        )
        for a, b in zip(fast.results["both"], slow.results["both"]):
            assert np.array_equal(a.samples, b.samples)

    def test_exp2_vectorized_matches_loop(self, small_task_module):
        fast = run_exp2(
            Exp2Config(iterations=2, seed=6), task=small_task_module, mesh_names=["U_L0"]
        )
        slow = run_exp2(
            Exp2Config(iterations=2, seed=6, vectorized=False),
            task=small_task_module,
            mesh_names=["U_L0"],
        )
        assert fast.global_loss == slow.global_loss
        assert np.array_equal(
            fast.heatmaps["U_L0"].accuracy_loss,
            slow.heatmaps["U_L0"].accuracy_loss,
            equal_nan=True,
        )
