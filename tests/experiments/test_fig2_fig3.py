"""Tests for the Fig. 2 and Fig. 3 experiment runners."""

import numpy as np
import pytest

from repro.experiments import Fig2Config, Fig3Config, run_fig2, run_fig3


class TestFig2Experiment:
    def test_runs_and_reports(self):
        result = run_fig2(Fig2Config(grid_points=16))
        assert set(result.peak_deviation) == {"T11", "T12", "T21", "T22"}
        report = result.report()
        assert "Fig. 2" in report and "T22" in report

    def test_paper_claim_monotonic_growth(self):
        """Fig. 2's message: sensitivity grows with the tuned phase angles."""
        result = run_fig2(Fig2Config(grid_points=32))
        assert all(result.monotonic.values())

    def test_sensitivity_surfaces_shape(self):
        result = run_fig2(Fig2Config(grid_points=12))
        assert result.sensitivity.relative_deviation.shape == (12, 12, 2, 2)

    def test_larger_k_larger_deviation(self):
        small = run_fig2(Fig2Config(grid_points=12, k=0.01))
        large = run_fig2(Fig2Config(grid_points=12, k=0.10))
        assert large.peak_deviation["T21"] > small.peak_deviation["T21"]


class TestFig3Experiment:
    def test_runs_with_small_config(self):
        result = run_fig3(Fig3Config(iterations=10, num_matrices=2, seed=0))
        table = result.rvd_table()
        assert table.shape == (2, 10)  # 2 unitaries x 10 MZIs of a 5x5 mesh
        assert np.all(table > 0)

    def test_paper_claim_non_uniform_impact(self):
        """Fig. 3's message: the average RVD differs across MZIs and across unitaries."""
        result = run_fig3(Fig3Config(iterations=30, num_matrices=2, seed=1))
        spreads = result.spread_per_matrix()
        assert np.all(spreads > 0.1)
        table = result.rvd_table()
        # The per-MZI pattern differs between the two unitaries.
        assert not np.allclose(table[0], table[1], rtol=0.05)

    def test_reproducible_with_seed(self):
        a = run_fig3(Fig3Config(iterations=5, num_matrices=1, seed=3)).rvd_table()
        b = run_fig3(Fig3Config(iterations=5, num_matrices=1, seed=3)).rvd_table()
        assert np.allclose(a, b)

    def test_report_contains_all_mzis(self):
        result = run_fig3(Fig3Config(iterations=5, num_matrices=1, seed=2))
        report = result.report()
        assert "MZI 10" in report and "Fig. 3" in report

    def test_mesh_sizes_follow_config(self):
        result = run_fig3(Fig3Config(iterations=5, num_matrices=1, matrix_size=4, seed=4))
        assert result.rvd_table().shape == (1, 6)

    def test_vectorized_matches_loop(self):
        fast = run_fig3(Fig3Config(iterations=6, num_matrices=2, seed=7)).rvd_table()
        slow = run_fig3(Fig3Config(iterations=6, num_matrices=2, seed=7, vectorized=False)).rvd_table()
        assert np.array_equal(fast, slow)
