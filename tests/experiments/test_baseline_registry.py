"""Tests for the baseline-accuracy experiment and the experiment registry."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    BaselineConfig,
    build_registry,
    get_experiment,
    list_experiments,
    run_baseline,
)


class TestBaseline:
    @pytest.fixture(scope="class")
    def baseline_result(self):
        return run_baseline(BaselineConfig(num_train=250, num_test=120, epochs=12, seed=5))

    def test_accuracies_in_range(self, baseline_result):
        assert 0.0 <= baseline_result.full_feature_accuracy <= 1.0
        assert 0.0 <= baseline_result.cropped_feature_accuracy <= 1.0

    def test_models_learn_above_chance(self, baseline_result):
        assert baseline_result.full_feature_accuracy > 0.3
        assert baseline_result.cropped_feature_accuracy > 0.3

    def test_paper_shape_compression_loss_is_modest(self, baseline_result):
        """§III-D: the 4x4 FFT crop costs some accuracy but far from all of it."""
        assert baseline_result.compression_loss < 0.4

    def test_report_mentions_paper_values(self, baseline_result):
        report = baseline_result.report()
        assert "94.12" in report and "6.77" in report


class TestRegistry:
    def test_contains_every_paper_artifact(self):
        registry = build_registry()
        assert set(registry) == {
            "fig2",
            "fig3",
            "exp1",
            "exp2",
            "exp3",
            "yield",
            "baseline",
            "drift",
        }

    def test_specs_are_complete(self):
        for spec in build_registry().values():
            assert spec.description and spec.paper_reference
            assert callable(spec.runner)
            assert spec.default_config is not None and spec.smoke_config is not None

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("FIG2").identifier == "fig2"

    def test_get_experiment_alias(self):
        assert get_experiment("robust").identifier == "exp3"
        assert get_experiment("ROBUST").identifier == "exp3"

    def test_get_experiment_unknown(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig9")

    def test_list_experiments_descriptions(self):
        listing = list_experiments()
        assert "Fig. 4" in listing["exp1"]
        assert "yield" in listing["yield"]
        assert "robust" in listing["exp3"]
        assert "exp4" in listing["drift"]
        assert len(listing) == 8

    def test_smoke_configs_are_cheaper(self):
        registry = build_registry()
        assert registry["fig2"].smoke_config.grid_points < registry["fig2"].default_config.grid_points
        assert registry["exp1"].smoke_config.iterations < registry["exp1"].default_config.iterations
        assert registry["fig3"].smoke_config.iterations < registry["fig3"].default_config.iterations
        assert registry["yield"].smoke_config.iterations < registry["yield"].default_config.iterations
        assert registry["exp3"].smoke_config.iterations < registry["exp3"].default_config.iterations
