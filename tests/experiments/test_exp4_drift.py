"""EXP 4 (drift + recalibration): registry wiring and the paired sweeps."""

import numpy as np
import pytest

from repro.experiments.drift_experiment import DriftConfig, run_drift
from repro.experiments.registry import EXPERIMENT_ALIASES, get_experiment


@pytest.fixture(scope="module")
def drift_result(small_task):
    config = DriftConfig(
        process="walk",
        step_scale=0.5,
        sigma=0.08,
        num_steps=6,
        timelines=8,
        recalibrate_every=3,
        cost_repeats=1,
    )
    return run_drift(config, task=small_task)


class TestRegistryWiring:
    def test_drift_registered_with_exp4_alias(self):
        spec = get_experiment("drift")
        assert EXPERIMENT_ALIASES["exp4"] == "drift"
        assert get_experiment("exp4").identifier == spec.identifier == "drift"
        assert "EXP 4" in spec.paper_reference

    def test_smoke_config_is_small(self):
        smoke = get_experiment("drift").smoke_config
        assert isinstance(smoke, DriftConfig)
        assert smoke.num_steps <= 20 and smoke.timelines <= 32
        assert smoke.training.num_train <= 1000


class TestPairedSweeps:
    def test_baseline_and_recalibrated_are_exactly_paired(self, small_task):
        """Same seed + no-randomness re-nulling: identical curves until the
        first recalibration event diverges them."""
        config = DriftConfig(
            process="walk",
            step_scale=0.5,
            sigma=0.08,
            num_steps=4,
            timelines=6,
            recalibrate_every=None,  # null policy: both sweeps identical
            cost_repeats=1,
        )
        result = run_drift(config, task=small_task)
        np.testing.assert_array_equal(
            result.baseline.accuracy, result.recalibrated.accuracy
        )
        assert result.accuracy_recovered == pytest.approx(0.0)

    def test_recalibration_recovers_accuracy(self, drift_result):
        assert drift_result.accuracy_recovered > 0.0
        assert drift_result.baseline.total_recalibrations == 0
        # every=3 over 6 steps: the whole fleet re-nulls at steps 0 and 3.
        assert drift_result.recalibrated.recalibrations_per_timeline == pytest.approx(2.0)

    def test_budget_accounting(self, drift_result):
        cost = drift_result.renull_cost
        assert cost.warm_seconds > 0 and cost.exact_seconds > 0
        expected = (
            drift_result.recalibrated.recalibrations_per_timeline * cost.warm_seconds
        )
        assert drift_result.renull_seconds_per_timeline == pytest.approx(expected)

    def test_report_smoke(self, drift_result):
        report = drift_result.report()
        assert "EXP 4" in report
        assert "no recal [%]" in report
        assert "re-nulls per" in report

    def test_generator_rng_still_pairs_the_sweeps(self, small_task):
        config = DriftConfig(
            process="ou",
            sigma=0.05,
            num_steps=3,
            timelines=4,
            recalibrate_every=None,
            cost_repeats=1,
        )
        result = run_drift(config, task=small_task, rng=np.random.default_rng(23))
        np.testing.assert_array_equal(
            result.baseline.accuracy, result.recalibrated.accuracy
        )

    def test_seed_sequence_rng_still_pairs_the_sweeps(self, small_task):
        config = DriftConfig(
            process="ou",
            sigma=0.05,
            num_steps=3,
            timelines=4,
            recalibrate_every=None,
            cost_repeats=1,
        )
        result = run_drift(
            config, task=small_task, rng=np.random.SeedSequence(23)
        )
        np.testing.assert_array_equal(
            result.baseline.accuracy, result.recalibrated.accuracy
        )
