"""Warm-start (incremental) recompilation vs. the exact decomposition.

The incremental path deliberately skips the exact path's validation and is
*not* bit-identical to it; these tests pin down the guarantees it does
make: structural reuse, unitarity of what the retuned mesh implements, and
reconstruction error within the same bounds the exact compile meets.
"""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.mesh.clements import clements_decompose, clements_phases
from repro.mesh.mesh import MZIMesh
from repro.mesh.svd_layer import PhotonicLinearLayer
from repro.utils.linalg import is_unitary, random_unitary


def _random_weight(rng, out_features, in_features, scale=0.35):
    return scale * (
        rng.standard_normal((out_features, in_features))
        + 1j * rng.standard_normal((out_features, in_features))
    )


class TestClementsPhases:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 16])
    def test_matches_exact_structure_and_reconstructs(self, n):
        unitary = random_unitary(n, rng=100 + n)
        exact = clements_decompose(unitary)
        thetas, phis, output_phases = clements_phases(unitary)
        assert thetas.shape == (exact.num_mzis,)
        assert phis.shape == (exact.num_mzis,)
        assert output_phases.shape == (n,)
        # Retuning a mesh compiled for a *different* unitary of the same
        # size must land exactly on the new target: the fast path emits
        # phases in the exact path's propagation order.
        mesh = MZIMesh.from_unitary(random_unitary(n, rng=200 + n))
        mesh.retune(thetas, phis, output_phases)
        reconstruction = mesh.matrix(None)
        assert np.max(np.abs(reconstruction - unitary)) < 1e-8
        assert is_unitary(reconstruction, atol=1e-8)

    def test_phases_land_in_canonical_range(self):
        thetas, phis, output_phases = clements_phases(random_unitary(6, rng=5))
        for values in (thetas, phis, output_phases):
            assert np.all(values >= 0.0)
            assert np.all(values < 2.0 * np.pi)

    def test_rejects_non_square_input(self):
        from repro.exceptions import DecompositionError

        with pytest.raises(DecompositionError):
            clements_phases(np.ones((3, 4), dtype=np.complex128))

    def test_grossly_non_unitary_input_fails_residual_check(self):
        from repro.exceptions import DecompositionError

        rng = np.random.default_rng(0)
        garbage = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
        with pytest.raises(DecompositionError):
            clements_phases(garbage)


class TestMeshRetune:
    def test_structure_is_preserved(self):
        u_first = random_unitary(8, rng=1)
        u_second = random_unitary(8, rng=2)
        mesh = MZIMesh.from_unitary(u_first)
        modes_before = mesh.modes()
        columns_before = mesh.columns()
        mesh.retune(*clements_phases(u_second))
        assert np.array_equal(mesh.modes(), modes_before)
        assert np.array_equal(mesh.columns(), columns_before)
        # configs stay consistent with the retuned phase arrays
        assert np.allclose(mesh.thetas(), [c.theta for c in mesh.configs])
        assert np.allclose(mesh.phis(), [c.phi for c in mesh.configs])

    def test_batched_path_follows_the_retune(self):
        mesh = MZIMesh.from_unitary(random_unitary(5, rng=3))
        target = random_unitary(5, rng=4)
        mesh.retune(*clements_phases(target))
        batched = mesh.matrix_batch(None, batch_size=3)
        assert np.max(np.abs(batched - target)) < 1e-8

    def test_shape_validation(self):
        mesh = MZIMesh.from_unitary(random_unitary(4, rng=6))
        with pytest.raises(ShapeError):
            mesh.retune(np.zeros(3), np.zeros(mesh.num_mzis), np.zeros(4))
        with pytest.raises(ShapeError):
            mesh.retune(np.zeros(mesh.num_mzis), np.zeros(mesh.num_mzis), np.zeros(5))


class TestLayerWarmRecompile:
    def test_warm_equals_exact_within_reconstruction_bounds(self):
        rng = np.random.default_rng(7)
        weight = _random_weight(rng, 10, 16)
        layer = PhotonicLinearLayer(weight)
        moved = weight + 0.02 * _random_weight(rng, 10, 16, scale=1.0)
        assert layer.retune_from_weight(moved)
        exact = PhotonicLinearLayer(moved)
        # Same guarantee the exact compile gives: the nominal hardware
        # matrix reproduces the weights to numerical precision.
        assert layer.reconstruction_error() < 1e-9
        assert exact.reconstruction_error() < 1e-9
        assert np.max(np.abs(layer.ideal_matrix() - exact.ideal_matrix())) < 1e-9
        # Both unitary factors stay unitary.
        assert is_unitary(layer.mesh_u.matrix(None), atol=1e-8)
        assert is_unitary(layer.mesh_v.matrix(None), atol=1e-8)
        # The singular spectra agree (the gain normalization too).
        assert np.allclose(layer.diagonal.singular_values, exact.diagonal.singular_values)
        assert np.isclose(layer.gain, exact.gain)

    def test_many_successive_warm_updates_stay_accurate(self):
        rng = np.random.default_rng(8)
        weight = _random_weight(rng, 16, 16)
        layer = PhotonicLinearLayer(weight)
        for _ in range(30):
            weight = weight + 0.01 * _random_weight(rng, 16, 16, scale=1.0)
            assert layer.retune_from_weight(weight)
        assert layer.reconstruction_error() < 1e-9

    def test_warm_update_handles_large_jumps(self):
        # The rotation update is an exact SVD at any distance; even a jump
        # to an unrelated weight matrix must either retune correctly or
        # report failure — never silently return a wrong layer.
        rng = np.random.default_rng(9)
        layer = PhotonicLinearLayer(_random_weight(rng, 8, 8))
        far = _random_weight(rng, 8, 8)
        if layer.retune_from_weight(far):
            assert layer.reconstruction_error() < 1e-7

    def test_reck_scheme_refuses_warm_path(self):
        rng = np.random.default_rng(10)
        layer = PhotonicLinearLayer(_random_weight(rng, 5, 5), scheme="reck")
        assert layer.retune_from_weight(_random_weight(rng, 5, 5)) is False

    def test_shape_mismatch_raises(self):
        rng = np.random.default_rng(11)
        layer = PhotonicLinearLayer(_random_weight(rng, 6, 8))
        with pytest.raises(ShapeError):
            layer.retune_from_weight(_random_weight(rng, 8, 6))

    def test_perturbed_evaluation_matches_fresh_layer(self):
        """Monte Carlo evaluation on a retuned layer equals a fresh compile.

        The perturbation machinery reads the mesh phase arrays, so a warm
        retune must leave the perturbed matrices equivalent (up to the
        tiny SVD-basis difference) to those of an exactly compiled layer.
        """
        from repro.variation.models import UncertaintyModel
        from repro.variation.sampler import sample_layer_perturbation

        rng = np.random.default_rng(12)
        weight = _random_weight(rng, 8, 8)
        layer = PhotonicLinearLayer(weight)
        moved = weight + 0.01 * _random_weight(rng, 8, 8, scale=1.0)
        assert layer.retune_from_weight(moved)
        fresh = PhotonicLinearLayer(moved)
        model = UncertaintyModel.both(0.01)
        warm_pert = sample_layer_perturbation(layer, model, rng=77)
        fresh_pert = sample_layer_perturbation(fresh, model, rng=77)
        # The draw depends only on the mesh structure (preserved by the
        # retune) and the stream, so both layers receive identical deltas.
        assert np.array_equal(warm_pert.u.delta_theta, fresh_pert.u.delta_theta)
        assert np.array_equal(warm_pert.v.delta_r_in, fresh_pert.v.delta_r_in)
        # Identical deltas produce comparably sized matrix deviations; the
        # layers are not bit-identical (different SVD bases -> different
        # phase operating points) but describe the same physics.
        warm_dev = np.linalg.norm(layer.matrix(warm_pert) - layer.ideal_matrix())
        fresh_dev = np.linalg.norm(fresh.matrix(fresh_pert) - fresh.ideal_matrix())
        assert warm_dev > 0 and fresh_dev > 0
        assert 1.0 / 3.0 < warm_dev / fresh_dev < 3.0
