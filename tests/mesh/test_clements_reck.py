"""Tests for the Clements and Reck mesh decompositions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NotUnitaryError
from repro.mesh import clements_decompose, clements_mzi_count, reck_decompose, reck_mzi_count
from repro.utils import random_unitary


class TestClements:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
    def test_reconstruction_random_unitaries(self, n):
        u = random_unitary(n, rng=n)
        decomposition = clements_decompose(u)
        assert np.allclose(decomposition.reconstruct(), u, atol=1e-8)

    def test_mzi_count_formula(self):
        for n in (2, 5, 10, 16):
            u = random_unitary(n, rng=n + 100)
            assert clements_decompose(u).num_mzis == clements_mzi_count(n) == n * (n - 1) // 2

    def test_identity_matrix(self):
        decomposition = clements_decompose(np.eye(6))
        assert np.allclose(decomposition.reconstruct(), np.eye(6), atol=1e-10)

    def test_diagonal_phase_matrix(self):
        d = np.diag(np.exp(1j * np.array([0.1, 2.2, 4.4, 5.9])))
        assert np.allclose(clements_decompose(d).reconstruct(), d, atol=1e-9)

    def test_permutation_matrix(self):
        p = np.eye(4)[[1, 0, 3, 2]]
        assert np.allclose(clements_decompose(p.astype(complex)).reconstruct(), p, atol=1e-9)

    def test_rectangular_depth_at_most_n(self):
        decomposition = clements_decompose(random_unitary(16, rng=3))
        assert decomposition.num_columns <= 16

    def test_angles_in_canonical_range(self):
        decomposition = clements_decompose(random_unitary(6, rng=4))
        assert np.all(decomposition.thetas() >= 0) and np.all(decomposition.thetas() < 2 * np.pi)
        assert np.all(decomposition.phis() >= 0) and np.all(decomposition.phis() < 2 * np.pi)

    def test_rejects_non_unitary(self):
        with pytest.raises(NotUnitaryError):
            clements_decompose(np.ones((3, 3)))

    def test_mzi_count_rejects_bad_n(self):
        from repro.exceptions import DecompositionError

        with pytest.raises(DecompositionError):
            clements_mzi_count(0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=10**6))
    def test_property_reconstruction(self, n, seed):
        """Any Haar-random unitary must be exactly reproduced by its Clements mesh."""
        u = random_unitary(n, rng=seed)
        assert np.allclose(clements_decompose(u).reconstruct(), u, atol=1e-7)


class TestReck:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_reconstruction_random_unitaries(self, n):
        u = random_unitary(n, rng=n + 50)
        assert np.allclose(reck_decompose(u).reconstruct(), u, atol=1e-8)

    def test_mzi_count_matches_clements(self):
        u = random_unitary(6, rng=9)
        assert reck_decompose(u).num_mzis == reck_mzi_count(6) == clements_mzi_count(6)

    def test_triangular_deeper_than_clements(self):
        """The Reck triangle needs more columns than the Clements rectangle for n >= 4."""
        u = random_unitary(8, rng=10)
        assert reck_decompose(u).num_columns > clements_decompose(u).num_columns

    def test_identity(self):
        assert np.allclose(reck_decompose(np.eye(5)).reconstruct(), np.eye(5), atol=1e-10)

    def test_rejects_non_unitary(self):
        with pytest.raises(NotUnitaryError):
            reck_decompose(2 * np.eye(3))

    def test_scheme_label(self):
        assert reck_decompose(random_unitary(3, rng=1)).scheme == "reck"
        assert clements_decompose(random_unitary(3, rng=1)).scheme == "clements"
