"""Tests for the programmable MZIMesh and MeshPerturbation."""

import numpy as np
import pytest

from repro.exceptions import ShapeError, VariationModelError
from repro.mesh import MeshPerturbation, MZIMesh
from repro.utils import random_unitary, unitarity_deviation


@pytest.fixture
def mesh_5(unitary_5x5):
    return MZIMesh.from_unitary(unitary_5x5)


class TestConstruction:
    def test_from_unitary_clements_and_reck(self, unitary_5x5):
        clements = MZIMesh.from_unitary(unitary_5x5, scheme="clements")
        reck = MZIMesh.from_unitary(unitary_5x5, scheme="reck")
        assert clements.num_mzis == reck.num_mzis == 10
        assert np.allclose(clements.ideal_matrix(), unitary_5x5, atol=1e-8)
        assert np.allclose(reck.ideal_matrix(), unitary_5x5, atol=1e-8)

    def test_unknown_scheme_rejected(self, unitary_5x5):
        with pytest.raises(VariationModelError):
            MZIMesh.from_unitary(unitary_5x5, scheme="butterfly")

    def test_structural_counts(self, mesh_5):
        assert mesh_5.n == 5
        assert mesh_5.num_phase_shifters == 20
        assert mesh_5.num_rows == 4
        assert mesh_5.num_columns <= 5
        assert len(mesh_5.grid_positions()) == 10

    def test_mzi_at_grid_lookup(self, mesh_5):
        for index, (col, row) in enumerate(mesh_5.grid_positions()):
            assert mesh_5.mzi_at(col, row) == index
        assert mesh_5.mzi_at(99, 99) is None

    def test_phase_statistics(self, mesh_5):
        stats = mesh_5.phase_statistics()
        assert 0 <= stats["min_phase"] <= stats["max_phase"] < 2 * np.pi


class TestMatrixEvaluation:
    def test_nominal_matrix_matches_target(self, mesh_5, unitary_5x5):
        assert np.max(np.abs(mesh_5.matrix() - unitary_5x5)) < 1e-8

    def test_zero_perturbation_is_identity_operation(self, mesh_5):
        zero = MeshPerturbation.none(mesh_5.num_mzis, mesh_5.n)
        assert np.allclose(mesh_5.matrix(zero), mesh_5.ideal_matrix())

    def test_phase_perturbation_changes_matrix_but_keeps_unitarity(self, mesh_5, rng):
        perturbation = MeshPerturbation(delta_theta=rng.normal(0, 0.3, mesh_5.num_mzis))
        perturbed = mesh_5.matrix(perturbation)
        assert not np.allclose(perturbed, mesh_5.ideal_matrix(), atol=1e-3)
        assert unitarity_deviation(perturbed) < 1e-9

    def test_symmetric_splitter_perturbation_keeps_unitarity(self, mesh_5, rng):
        perturbation = MeshPerturbation(
            delta_r_in=rng.normal(0, 0.05, mesh_5.num_mzis),
            delta_r_out=rng.normal(0, 0.05, mesh_5.num_mzis),
        )
        assert unitarity_deviation(mesh_5.matrix(perturbation)) < 1e-9

    def test_output_phase_perturbation(self, mesh_5):
        perturbation = MeshPerturbation(delta_output_phase=np.full(5, 0.1))
        perturbed = mesh_5.matrix(perturbation)
        assert np.allclose(perturbed, np.exp(1j * 0.1) * mesh_5.ideal_matrix())

    def test_larger_sigma_gives_larger_deviation_on_average(self, mesh_5):
        gen = np.random.default_rng(0)
        def mean_dev(sigma):
            devs = []
            for _ in range(20):
                p = MeshPerturbation(
                    delta_theta=gen.normal(0, sigma, mesh_5.num_mzis),
                    delta_phi=gen.normal(0, sigma, mesh_5.num_mzis),
                )
                devs.append(np.linalg.norm(mesh_5.matrix(p) - mesh_5.ideal_matrix()))
            return np.mean(devs)

        assert mean_dev(0.3) > mean_dev(0.03)

    def test_perturbation_validation_catches_bad_shapes(self, mesh_5):
        with pytest.raises(ShapeError):
            mesh_5.matrix(MeshPerturbation(delta_theta=np.zeros(3)))
        with pytest.raises(ShapeError):
            mesh_5.matrix(MeshPerturbation(delta_output_phase=np.zeros(3)))

    def test_splitter_perturbation_clipped_to_physical_range(self, mesh_5):
        perturbation = MeshPerturbation(delta_r_in=np.full(mesh_5.num_mzis, 10.0))
        matrix = mesh_5.matrix(perturbation)  # must not produce r > 1
        assert np.all(np.isfinite(matrix))


class TestMeshPerturbationHelpers:
    def test_masked_zeroes_outside_mask(self):
        perturbation = MeshPerturbation(
            delta_theta=np.array([1.0, 2.0, 3.0]),
            delta_phi=np.array([1.0, 1.0, 1.0]),
        )
        mask = np.array([True, False, True])
        masked = perturbation.masked(mask)
        assert np.allclose(masked.delta_theta, [1.0, 0.0, 3.0])
        assert np.allclose(masked.delta_phi, [1.0, 0.0, 1.0])

    def test_masked_shape_mismatch(self):
        perturbation = MeshPerturbation(delta_theta=np.zeros(3))
        with pytest.raises(ShapeError):
            perturbation.masked(np.array([True, False]))

    def test_scaled(self):
        perturbation = MeshPerturbation(delta_theta=np.array([1.0, -2.0]))
        scaled = perturbation.scaled(0.5)
        assert np.allclose(scaled.delta_theta, [0.5, -1.0])
        assert scaled.delta_phi is None

    def test_none_constructor_shapes(self):
        zero = MeshPerturbation.none(7, 4)
        assert zero.delta_theta.shape == (7,)
        assert zero.delta_output_phase.shape == (4,)
