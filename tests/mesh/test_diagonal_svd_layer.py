"""Tests for the diagonal (Sigma) stage and the SVD-based photonic layer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.mesh import DiagonalPerturbation, DiagonalStage, LayerPerturbation, MeshPerturbation, PhotonicLinearLayer
from repro.utils import random_complex_matrix, svd_decompose


class TestDiagonalStage:
    def test_nominal_matrix_reproduces_singular_values(self):
        values = np.array([2.0, 1.0, 0.3])
        stage = DiagonalStage(values)
        assert np.allclose(stage.ideal_matrix(), np.diag(values), atol=1e-12)

    def test_rectangular_embedding(self):
        values = np.array([1.5, 0.5])
        stage = DiagonalStage(values, shape=(4, 2))
        matrix = stage.matrix()
        assert matrix.shape == (4, 2)
        assert np.allclose(matrix[:2, :2], np.diag(values))
        assert np.allclose(matrix[2:, :], 0.0)

    def test_default_gain_is_max_singular_value(self):
        stage = DiagonalStage(np.array([3.0, 1.0]))
        assert stage.gain == pytest.approx(3.0)
        assert np.all(stage.normalized_values() <= 1.0 + 1e-12)

    def test_zero_singular_values(self):
        stage = DiagonalStage(np.zeros(3))
        assert stage.gain == 1.0
        assert np.allclose(stage.ideal_matrix(), 0.0)

    def test_explicit_gain_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            DiagonalStage(np.array([2.0]), gain=1.0)

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            DiagonalStage(np.array([-1.0]))

    def test_incompatible_shape_rejected(self):
        with pytest.raises(ShapeError):
            DiagonalStage(np.array([1.0, 2.0]), shape=(5, 5))

    def test_counts(self):
        stage = DiagonalStage(np.array([1.0, 0.4, 0.2]))
        assert stage.num_mzis == 3 and stage.num_phase_shifters == 6

    def test_perturbation_changes_attenuation(self):
        stage = DiagonalStage(np.array([1.0, 0.5]))
        perturbation = DiagonalPerturbation(delta_theta=np.array([0.3, 0.0]))
        perturbed = stage.matrix(perturbation)
        nominal = stage.ideal_matrix()
        assert not np.isclose(perturbed[0, 0], nominal[0, 0])
        assert np.isclose(perturbed[1, 1], nominal[1, 1])

    def test_perturbation_validation(self):
        stage = DiagonalStage(np.array([1.0, 0.5]))
        with pytest.raises(ShapeError):
            stage.matrix(DiagonalPerturbation(delta_theta=np.zeros(3)))

    def test_attenuations_bounded_by_one_nominally(self):
        stage = DiagonalStage(np.array([5.0, 2.0, 0.1]))
        assert np.all(np.abs(stage.attenuations()) <= 1.0 + 1e-9)


class TestPhotonicLinearLayer:
    def test_nominal_matrix_reproduces_weight(self):
        weight = random_complex_matrix(6, 4, rng=0)
        layer = PhotonicLinearLayer(weight)
        assert layer.reconstruction_error() < 1e-8

    def test_rectangular_wide_weight(self):
        weight = random_complex_matrix(3, 8, rng=1)
        layer = PhotonicLinearLayer(weight)
        assert layer.matrix().shape == (3, 8)
        assert layer.reconstruction_error() < 1e-8

    def test_mzi_counts_match_paper_formulas(self):
        weight = random_complex_matrix(10, 16, rng=2)
        layer = PhotonicLinearLayer(weight)
        summary = layer.hardware_summary()
        assert summary["u_mzis"] == 45       # 10*9/2
        assert summary["v_mzis"] == 120      # 16*15/2
        assert summary["sigma_mzis"] == 10   # min(10, 16)
        assert summary["total_mzis"] == 175
        assert layer.num_phase_shifters == 350

    def test_gain_equals_largest_singular_value(self):
        weight = random_complex_matrix(5, 5, rng=3)
        _, s, _ = svd_decompose(weight)
        assert PhotonicLinearLayer(weight).gain == pytest.approx(s[0])

    def test_forward_matches_weight_multiplication(self):
        weight = random_complex_matrix(4, 6, rng=4)
        layer = PhotonicLinearLayer(weight)
        x = random_complex_matrix(7, 6, rng=5)
        assert np.allclose(layer.forward(x), x @ weight.T, atol=1e-8)
        vec = random_complex_matrix(1, 6, rng=6)[0]
        assert np.allclose(layer.forward(vec), weight @ vec, atol=1e-8)

    def test_forward_shape_validation(self):
        layer = PhotonicLinearLayer(random_complex_matrix(3, 4, rng=7))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros(5, dtype=complex))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((2, 5), dtype=complex))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 2, 4), dtype=complex))

    def test_rejects_non_2d_weight(self):
        with pytest.raises(ShapeError):
            PhotonicLinearLayer(np.zeros(4, dtype=complex))

    def test_perturbation_changes_matrix(self):
        weight = random_complex_matrix(4, 4, rng=8)
        layer = PhotonicLinearLayer(weight)
        perturbation = LayerPerturbation(
            u=MeshPerturbation(delta_theta=np.full(layer.mesh_u.num_mzis, 0.2)),
            v=None,
            sigma=None,
        )
        assert not np.allclose(layer.matrix(perturbation), layer.ideal_matrix(), atol=1e-3)

    def test_reck_scheme_layer(self):
        weight = random_complex_matrix(4, 4, rng=9)
        layer = PhotonicLinearLayer(weight, scheme="reck")
        assert layer.reconstruction_error() < 1e-8
        assert layer.scheme == "reck"
