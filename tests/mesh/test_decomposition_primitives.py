"""Tests for the shared decomposition primitives (nulling, factoring, layout)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DecompositionError
from repro.mesh import (
    MeshDecomposition,
    MZIConfig,
    assign_columns,
    factor_diag_times_mzi,
    solve_left_nulling,
    solve_right_nulling,
    wrap_phase,
)
from repro.photonics import mzi_transfer
from repro.utils import random_unitary


class TestWrapPhase:
    def test_wraps_into_range(self):
        assert wrap_phase(2 * np.pi + 0.3) == pytest.approx(0.3)
        assert wrap_phase(-0.3) == pytest.approx(2 * np.pi - 0.3)
        assert 0 <= wrap_phase(123.456) < 2 * np.pi


class TestNullingSolvers:
    @settings(max_examples=50, deadline=None)
    @given(
        st.complex_numbers(max_magnitude=3.0, allow_nan=False, allow_infinity=False),
        st.complex_numbers(max_magnitude=3.0, allow_nan=False, allow_infinity=False),
    )
    def test_right_nulling_property(self, u_left, u_right):
        """The solved angles must actually null the target combination."""
        theta, phi = solve_right_nulling(u_left, u_right)
        t_inv = mzi_transfer(theta, phi).conj().T
        row = np.array([u_left, u_right])
        nulled = row @ t_inv
        scale = max(1.0, abs(u_left), abs(u_right))
        assert abs(nulled[0]) / scale < 1e-9

    @settings(max_examples=50, deadline=None)
    @given(
        st.complex_numbers(max_magnitude=3.0, allow_nan=False, allow_infinity=False),
        st.complex_numbers(max_magnitude=3.0, allow_nan=False, allow_infinity=False),
    )
    def test_left_nulling_property(self, u_upper, u_lower):
        theta, phi = solve_left_nulling(u_upper, u_lower)
        t = mzi_transfer(theta, phi)
        col = np.array([u_upper, u_lower])
        nulled = t @ col
        scale = max(1.0, abs(u_upper), abs(u_lower))
        assert abs(nulled[1]) / scale < 1e-9

    def test_edge_cases_zero_inputs(self):
        assert solve_right_nulling(0.0, 0.0) == (0.0, 0.0)
        assert solve_left_nulling(0.0, 0.0) == (0.0, 0.0)
        theta, _ = solve_right_nulling(0.0, 1.0)
        assert theta == pytest.approx(np.pi)

    def test_angles_in_canonical_range(self):
        theta, phi = solve_right_nulling(1 + 1j, -2 + 0.5j)
        assert 0 <= theta < 2 * np.pi and 0 <= phi < 2 * np.pi


class TestFactorDiagTimesMZI:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_roundtrip_random_unitary(self, seed):
        block = random_unitary(2, rng=seed)
        a, b, theta, phi = factor_diag_times_mzi(block)
        assert np.allclose(np.diag([a, b]) @ mzi_transfer(theta, phi), block, atol=1e-8)
        assert abs(abs(a) - 1) < 1e-9 and abs(abs(b) - 1) < 1e-9

    def test_diagonal_block(self):
        block = np.diag(np.exp(1j * np.array([0.3, 1.1])))
        a, b, theta, phi = factor_diag_times_mzi(block)
        assert np.allclose(np.diag([a, b]) @ mzi_transfer(theta, phi), block, atol=1e-10)

    def test_antidiagonal_block(self):
        block = np.array([[0, 1], [1j, 0]], dtype=complex)
        a, b, theta, phi = factor_diag_times_mzi(block)
        assert np.allclose(np.diag([a, b]) @ mzi_transfer(theta, phi), block, atol=1e-10)

    def test_rejects_non_unitary(self):
        with pytest.raises(DecompositionError):
            factor_diag_times_mzi(np.array([[2.0, 0], [0, 1.0]], dtype=complex))

    def test_rejects_wrong_shape(self):
        with pytest.raises(DecompositionError):
            factor_diag_times_mzi(np.eye(3))


class TestColumnAssignment:
    def test_disjoint_modes_share_column(self):
        assert assign_columns([0, 2], n=4) == [0, 0]

    def test_overlapping_modes_stack(self):
        assert assign_columns([0, 1, 0], n=3) == [0, 1, 2]

    def test_clements_16_fits_in_16_columns(self):
        decomposition = MeshDecomposition
        from repro.mesh import clements_decompose

        mesh = clements_decompose(random_unitary(16, rng=0))
        assert mesh.num_columns <= 16

    def test_rejects_out_of_range_mode(self):
        with pytest.raises(DecompositionError):
            assign_columns([3], n=4)


class TestMeshDecompositionContainer:
    def test_reconstruct_and_counts(self):
        u = random_unitary(4, rng=1)
        from repro.mesh import clements_decompose

        decomposition = clements_decompose(u)
        assert decomposition.num_mzis == 6
        assert decomposition.thetas().shape == (6,)
        assert decomposition.phis().shape == (6,)
        assert np.allclose(decomposition.reconstruct(), u, atol=1e-8)

    def test_output_phase_shape_validation(self):
        with pytest.raises(DecompositionError):
            MeshDecomposition(n=3, configs=[], output_phases=np.zeros(2))

    def test_config_transfer_matrix(self):
        config = MZIConfig(mode=0, theta=1.0, phi=0.5, column=0, index=0)
        assert np.allclose(config.transfer_matrix(), mzi_transfer(1.0, 0.5))
