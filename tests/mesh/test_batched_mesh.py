"""Tests for the batched (leading Monte Carlo axis) mesh evaluation path."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.mesh import (
    DiagonalPerturbation,
    DiagonalPerturbationBatch,
    DiagonalStage,
    LayerPerturbationBatch,
    MeshPerturbation,
    MeshPerturbationBatch,
    MZIMesh,
    PhotonicLinearLayer,
)
from repro.utils import random_unitary
from repro.utils.rng import spawn_rngs
from repro.variation import (
    UncertaintyModel,
    sample_diagonal_perturbation,
    sample_layer_perturbation,
    sample_mesh_perturbation,
    sample_mesh_perturbation_batch,
)


@pytest.mark.parametrize("scheme", ["clements", "reck"])
class TestMatrixBatchAgreement:
    """matrix_batch must reproduce the per-realization loop bit for bit."""

    def test_matrix_batch_equals_loop(self, scheme):
        mesh = MZIMesh.from_unitary(random_unitary(8, rng=3), scheme=scheme)
        model = UncertaintyModel.both(0.05, perturb_output_phases=True)
        generators = spawn_rngs(11, 16)
        perturbations = [sample_mesh_perturbation(mesh, model, g) for g in generators]
        batched = mesh.matrix_batch(MeshPerturbationBatch.stack(perturbations))
        looped = np.stack([mesh.matrix(p) for p in perturbations])
        assert batched.shape == (16, 8, 8)
        assert np.array_equal(batched, looped)

    def test_batch_sampler_equals_looped_sampler(self, scheme):
        """The batch sampler draws the exact same values from the same streams."""
        mesh = MZIMesh.from_unitary(random_unitary(6, rng=4), scheme=scheme)
        model = UncertaintyModel.both(0.08)
        batch = sample_mesh_perturbation_batch(mesh, model, spawn_rngs(2, 9))
        singles = [sample_mesh_perturbation(mesh, model, g) for g in spawn_rngs(2, 9)]
        for index, single in enumerate(singles):
            row = batch.realization(index)
            assert np.array_equal(row.delta_theta, single.delta_theta)
            assert np.array_equal(row.delta_phi, single.delta_phi)
            assert np.array_equal(row.delta_r_in, single.delta_r_in)
            assert np.array_equal(row.delta_r_out, single.delta_r_out)


class TestMatrixBatchSemantics:
    def test_nominal_batch_replicates_ideal(self, unitary_5x5):
        mesh = MZIMesh.from_unitary(unitary_5x5)
        nominal = mesh.matrix_batch(None, batch_size=4)
        assert nominal.shape == (4, 5, 5)
        for matrix in nominal:
            assert np.array_equal(matrix, mesh.ideal_matrix())

    def test_nominal_batch_requires_batch_size(self, unitary_5x5):
        mesh = MZIMesh.from_unitary(unitary_5x5)
        with pytest.raises(ValueError):
            mesh.matrix_batch(None)
        with pytest.raises(ValueError):
            mesh.matrix_batch(None, batch_size=0)

    def test_batch_size_mismatch_rejected(self, unitary_5x5):
        mesh = MZIMesh.from_unitary(unitary_5x5)
        model = UncertaintyModel.both(0.05)
        batch = sample_mesh_perturbation_batch(mesh, model, spawn_rngs(0, 3))
        with pytest.raises(ShapeError):
            mesh.matrix_batch(batch, batch_size=5)

    def test_output_phase_only_batch(self, unitary_5x5):
        """A batch perturbing only the output screen still gets a full batch axis."""
        mesh = MZIMesh.from_unitary(unitary_5x5)
        rng = np.random.default_rng(0)
        screens = rng.normal(0.0, 0.1, size=(3, mesh.n))
        batch = MeshPerturbationBatch(delta_output_phase=screens)
        batched = mesh.matrix_batch(batch)
        looped = np.stack(
            [mesh.matrix(MeshPerturbation(delta_output_phase=screen)) for screen in screens]
        )
        assert np.array_equal(batched, looped)

    def test_validation_rejects_wrong_shapes(self, unitary_5x5):
        mesh = MZIMesh.from_unitary(unitary_5x5)
        bad = MeshPerturbationBatch(delta_theta=np.zeros((2, mesh.num_mzis + 1)))
        with pytest.raises(ShapeError):
            mesh.matrix_batch(bad)

    def test_empty_batch_objects_rejected(self):
        with pytest.raises(ShapeError):
            MeshPerturbationBatch().batch_size
        with pytest.raises(ValueError):
            MeshPerturbationBatch.stack([])


class TestStackSemantics:
    def test_stack_zero_fills_missing_fields(self):
        present = MeshPerturbation(delta_theta=np.ones(4))
        absent = MeshPerturbation()
        batch = MeshPerturbationBatch.stack([present, absent])
        assert np.array_equal(batch.delta_theta, np.stack([np.ones(4), np.zeros(4)]))
        assert batch.delta_phi is None

    def test_realization_roundtrip(self):
        rng = np.random.default_rng(5)
        perturbations = [
            MeshPerturbation(
                delta_theta=rng.normal(size=3),
                delta_phi=rng.normal(size=3),
                delta_r_in=rng.normal(size=3),
                delta_r_out=rng.normal(size=3),
                delta_output_phase=rng.normal(size=4),
            )
            for _ in range(5)
        ]
        batch = MeshPerturbationBatch.stack(perturbations)
        assert batch.batch_size == 5
        for index, original in enumerate(perturbations):
            row = batch.realization(index)
            assert np.array_equal(row.delta_theta, original.delta_theta)
            assert np.array_equal(row.delta_output_phase, original.delta_output_phase)


class TestDiagonalBatch:
    def test_matrix_batch_equals_loop(self):
        stage = DiagonalStage(np.array([2.0, 1.0, 0.5]), shape=(3, 5))
        model = UncertaintyModel.both(0.05)
        perturbations = [sample_diagonal_perturbation(3, model, g) for g in spawn_rngs(7, 8)]
        batch = DiagonalPerturbationBatch.stack(perturbations)
        batched = stage.matrix_batch(batch)
        looped = np.stack([stage.matrix(p) for p in perturbations])
        assert batched.shape == (8, 3, 5)
        assert np.array_equal(batched, looped)

    def test_nominal_batch(self):
        stage = DiagonalStage(np.array([1.0, 0.25]))
        nominal = stage.matrix_batch(None, batch_size=3)
        assert nominal.shape == (3, 2, 2)
        assert np.array_equal(nominal[0], stage.ideal_matrix())

    def test_attenuations_batch_shape(self):
        stage = DiagonalStage(np.array([1.0, 0.5]))
        batch = DiagonalPerturbationBatch(delta_theta=np.zeros((4, 2)))
        amplitudes = stage.attenuations_batch(batch)
        assert amplitudes.shape == (4, 2)
        assert np.allclose(np.abs(amplitudes), stage.normalized_values(), atol=1e-12)

    def test_empty_batch_rejected(self):
        with pytest.raises(ShapeError):
            DiagonalPerturbationBatch().batch_size
        with pytest.raises(ValueError):
            DiagonalPerturbationBatch.stack([])


class TestLayerBatch:
    def test_matrix_batch_equals_loop(self, rng):
        weight = rng.normal(size=(4, 6)) + 1j * rng.normal(size=(4, 6))
        layer = PhotonicLinearLayer(weight)
        model = UncertaintyModel.both(0.05)
        perturbations = [sample_layer_perturbation(layer, model, g) for g in spawn_rngs(13, 6)]
        batch = LayerPerturbationBatch.stack(perturbations)
        batched = layer.matrix_batch(batch)
        looped = np.stack([layer.matrix(p) for p in perturbations])
        assert batched.shape == (6, 4, 6)
        assert np.array_equal(batched, looped)

    def test_nominal_batch_matches_weight(self, rng):
        weight = rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3))
        layer = PhotonicLinearLayer(weight)
        nominal = layer.matrix_batch(None, batch_size=2)
        assert nominal.shape == (2, 3, 3)
        assert np.allclose(nominal[1], weight, atol=1e-8)

    def test_stack_with_missing_sigma_rows(self, rng):
        weight = rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3))
        layer = PhotonicLinearLayer(weight)
        with_sigma = sample_layer_perturbation(layer, UncertaintyModel.both(0.05), 0)
        without_sigma = sample_layer_perturbation(
            layer, UncertaintyModel.both(0.05, perturb_sigma_stage=False), 1
        )
        batch = LayerPerturbationBatch.stack([with_sigma, without_sigma])
        assert batch.sigma is not None
        assert np.array_equal(batch.sigma.delta_theta[1], np.zeros(layer.diagonal.num_mzis))
        batched = layer.matrix_batch(batch)
        assert np.array_equal(batched[0], layer.matrix(with_sigma))
        assert np.array_equal(batched[1], layer.matrix(without_sigma))
