"""Tests for the numerical gradient checker itself."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, numerical_gradient


def test_numerical_gradient_simple_quadratic():
    x = Tensor([2.0, -1.0], requires_grad=True)
    grad = numerical_gradient(lambda t: (t * t).sum(), [x], 0)
    assert np.allclose(grad, [4.0, -2.0], atol=1e-5)


def test_numerical_gradient_complex_abs2():
    z = Tensor([1 + 2j], requires_grad=True)
    grad = numerical_gradient(lambda t: t.abs2().sum(), [z], 0)
    # d|z|^2/dx + i d|z|^2/dy = 2x + 2iy = 2z
    assert np.allclose(grad, [2 + 4j], atol=1e-5)


def test_numerical_gradient_rejects_non_scalar():
    x = Tensor([1.0, 2.0], requires_grad=True)
    with pytest.raises(ValueError):
        numerical_gradient(lambda t: t * 2, [x], 0)


def test_check_gradients_passes_for_correct_op():
    x = Tensor([0.3, -0.7], requires_grad=True)
    assert check_gradients(lambda t: (t.exp()).sum(), [x])


def test_check_gradients_detects_wrong_gradient():
    """A deliberately broken op must be caught by the checker."""

    def broken_square(t: Tensor) -> Tensor:
        out_data = t.data**2

        def backward(grad):
            return (grad * 3.0 * t.data,)  # wrong: should be 2 * t

        return Tensor._make(out_data, (t,), backward, "broken_square").sum()

    x = Tensor([1.0, 2.0], requires_grad=True)
    with pytest.raises(AssertionError):
        check_gradients(broken_square, [x])


def test_check_gradients_skips_non_grad_inputs():
    x = Tensor([1.0], requires_grad=True)
    c = Tensor([2.0], requires_grad=False)
    assert check_gradients(lambda a, b: (a * b).sum(), [x, c])
