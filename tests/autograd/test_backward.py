"""Gradient-correctness tests: analytic backward vs finite differences.

These tests verify the Wirtinger-convention gradients for real and complex
tensors — the foundation the SPNN training rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, check_gradients
from repro.autograd import functional as F


def _real(shape, seed, scale=1.0):
    return Tensor(scale * np.random.default_rng(seed).standard_normal(shape), requires_grad=True)


def _cplx(shape, seed, scale=1.0):
    gen = np.random.default_rng(seed)
    data = scale * (gen.standard_normal(shape) + 1j * gen.standard_normal(shape))
    return Tensor(data, requires_grad=True)


class TestRealGradients:
    def test_add_mul(self):
        a, b = _real((3,), 0), _real((3,), 1)
        check_gradients(lambda x, y: (x * y + x).sum(), [a, b])

    def test_division(self):
        a, b = _real((4,), 2), _real((4,), 3, scale=1.0)
        b.data = b.data + 3.0  # keep away from zero
        check_gradients(lambda x, y: (x / y).sum(), [a, b])

    def test_matmul(self):
        a, b = _real((2, 3), 4), _real((3, 4), 5)
        check_gradients(lambda x, y: (x @ y).sum(), [a, b])

    def test_power_and_sqrt(self):
        a = _real((3,), 6)
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda x: (x**3).sum(), [a])
        check_gradients(lambda x: x.sqrt().sum(), [a])

    def test_reductions_and_reshape(self):
        a = _real((2, 3), 7)
        check_gradients(lambda x: x.reshape(6).mean(), [a])
        check_gradients(lambda x: x.sum(axis=1).sum(), [a])
        check_gradients(lambda x: x.transpose().sum(), [a])

    def test_getitem(self):
        a = _real((5,), 8)
        check_gradients(lambda x: x[1:4].sum(), [a])

    def test_exp_log(self):
        a = _real((3,), 9)
        check_gradients(lambda x: x.exp().sum(), [a])
        b = _real((3,), 10)
        b.data = np.abs(b.data) + 0.5
        check_gradients(lambda x: x.log().sum(), [b])

    def test_broadcasting_gradient(self):
        a, b = _real((2, 3), 11), _real((3,), 12)
        check_gradients(lambda x, y: (x + y).sum(), [a, b])
        check_gradients(lambda x, y: (x * y).sum(), [a, b])

    def test_grad_accumulates_over_multiple_uses(self):
        a = Tensor([2.0], requires_grad=True)
        out = (a * 3) + (a * 4)
        out.backward()
        assert a.grad[0] == pytest.approx(7.0)


class TestComplexGradients:
    def test_complex_matmul_abs(self):
        a, b = _cplx((2, 3), 0), _cplx((3, 2), 1)
        check_gradients(lambda x, y: (x @ y).abs().sum(), [a, b])

    def test_complex_abs2(self):
        z = _cplx((4,), 2)
        check_gradients(lambda x: x.abs2().sum(), [z])

    def test_complex_mul_conj(self):
        a, b = _cplx((3,), 3), _cplx((3,), 4)
        check_gradients(lambda x, y: (x * y.conj()).abs().sum(), [a, b])

    def test_complex_real_imag(self):
        z = _cplx((3,), 5)
        check_gradients(lambda x: (x.real() ** 2 + x.imag() ** 2).sum(), [z])

    def test_complex_angle(self):
        z = _cplx((3,), 6)
        z.data = z.data + (2.0 + 2.0j)  # keep away from the origin
        check_gradients(lambda x: x.angle().sum(), [z])

    def test_complex_exp(self):
        z = _cplx((3,), 7, scale=0.3)
        check_gradients(lambda x: x.exp().abs().sum(), [z])

    def test_gradient_descent_reduces_loss(self):
        """A complex least-squares problem must decrease under GD with these gradients."""
        gen = np.random.default_rng(0)
        w_true = gen.standard_normal((3,)) + 1j * gen.standard_normal((3,))
        x = gen.standard_normal((20, 3)) + 1j * gen.standard_normal((20, 3))
        y = np.abs(x @ w_true)
        w_init = 0.1 * (gen.standard_normal(3) + 1j * gen.standard_normal(3))
        w = Tensor(w_init, requires_grad=True)
        losses = []
        for _ in range(50):
            w.zero_grad()
            pred = (Tensor(x) @ w).abs()
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            w.data = w.data - 0.05 * w.grad
            losses.append(loss.item())
        assert losses[-1] < 0.2 * losses[0]

    @settings(max_examples=15, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            (2, 2),
            elements=st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False),
        ),
        hnp.arrays(
            np.float64,
            (2, 2),
            elements=st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False),
        ),
    )
    def test_property_complex_softplus_abs_pipeline(self, re, im):
        """Property: gradients of the SPNN-style pipeline check out for arbitrary inputs.

        Inputs are shifted away from the origin because ``abs`` is not
        differentiable at exactly zero (finite differences are meaningless
        there).
        """
        z = Tensor(re + 1j * im + (0.5 + 0.5j), requires_grad=True)
        check_gradients(lambda x: F.softplus(x.abs()).sum(), [z], rtol=1e-3, atol=1e-5)
