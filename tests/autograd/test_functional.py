"""Tests for functional ops: activations, softmax, losses."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    accuracy,
    check_gradients,
    cross_entropy,
    log_softmax,
    modulus,
    modulus_squared,
    mse_loss,
    nll_loss,
    relu,
    sigmoid,
    softmax,
    softplus,
    tanh,
)
from repro.exceptions import AutogradError


class TestActivationValues:
    def test_softplus_matches_reference(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert np.allclose(softplus(Tensor(x)).data, np.log1p(np.exp(x)))

    def test_softplus_large_inputs_linear(self):
        out = softplus(Tensor([100.0]))
        assert np.isfinite(out.data).all() and out.item() == pytest.approx(100.0)

    def test_softplus_beta(self):
        x = np.array([0.5])
        assert softplus(Tensor(x), beta=2.0).item() == pytest.approx(np.log1p(np.exp(1.0)) / 2.0)

    def test_relu_sigmoid_tanh(self):
        x = Tensor([-1.0, 0.0, 2.0])
        assert np.allclose(relu(x).data, [0, 0, 2])
        assert np.allclose(sigmoid(x).data, 1 / (1 + np.exp([1.0, 0.0, -2.0])))
        assert np.allclose(tanh(x).data, np.tanh([-1.0, 0.0, 2.0]))

    def test_real_only_activations_reject_complex(self):
        z = Tensor([1 + 1j])
        for fn in (softplus, relu, sigmoid, tanh, log_softmax):
            with pytest.raises(AutogradError):
                fn(z)

    def test_modulus_helpers(self):
        z = Tensor([3 + 4j])
        assert modulus(z).item() == pytest.approx(5.0)
        assert modulus_squared(z).item() == pytest.approx(25.0)


class TestSoftmax:
    def test_log_softmax_normalization(self):
        x = Tensor(np.random.default_rng(0).standard_normal((4, 6)))
        lp = log_softmax(x)
        assert np.allclose(np.exp(lp.data).sum(axis=-1), 1.0)

    def test_log_softmax_shift_invariance(self):
        x = np.random.default_rng(1).standard_normal((3, 5))
        assert np.allclose(log_softmax(Tensor(x)).data, log_softmax(Tensor(x + 100.0)).data)

    def test_log_softmax_extreme_values_stable(self):
        x = Tensor(np.array([[1000.0, 0.0, -1000.0]]))
        assert np.isfinite(log_softmax(x).data).all()

    def test_softmax_sums_to_one(self):
        x = Tensor(np.random.default_rng(2).standard_normal((2, 4)))
        assert np.allclose(softmax(x).data.sum(axis=-1), 1.0)

    def test_log_softmax_gradient(self):
        x = Tensor(np.random.default_rng(3).standard_normal((2, 4)), requires_grad=True)
        check_gradients(lambda t: (log_softmax(t) * log_softmax(t)).sum(), [x])


class TestLosses:
    def test_nll_picks_target_entries(self):
        log_probs = Tensor(np.log(np.array([[0.7, 0.3], [0.2, 0.8]])))
        loss = nll_loss(log_probs, [0, 1])
        assert loss.item() == pytest.approx(-(np.log(0.7) + np.log(0.8)) / 2)

    def test_nll_reductions(self):
        log_probs = Tensor(np.log(np.array([[0.5, 0.5], [0.5, 0.5]])))
        assert nll_loss(log_probs, [0, 1], reduction="sum").item() == pytest.approx(2 * np.log(2))
        assert nll_loss(log_probs, [0, 1], reduction="none").shape == (2,)

    def test_nll_rejects_bad_targets(self):
        log_probs = Tensor(np.zeros((2, 3)))
        with pytest.raises(AutogradError):
            nll_loss(log_probs, [0, 3])
        with pytest.raises(AutogradError):
            nll_loss(log_probs, [0])
        with pytest.raises(AutogradError):
            nll_loss(Tensor(np.zeros(3)), [0])

    def test_nll_unknown_reduction(self):
        with pytest.raises(AutogradError):
            nll_loss(Tensor(np.zeros((1, 2))), [0], reduction="median")

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((3, 10)))
        assert cross_entropy(logits, [0, 5, 9]).item() == pytest.approx(np.log(10))

    def test_cross_entropy_gradient(self):
        logits = Tensor(np.random.default_rng(4).standard_normal((3, 5)), requires_grad=True)
        check_gradients(lambda t: cross_entropy(t, np.array([0, 2, 4])), [logits])

    def test_cross_entropy_decreases_for_correct_confidence(self):
        confident = Tensor(np.array([[10.0, 0.0], [0.0, 10.0]]))
        uncertain = Tensor(np.zeros((2, 2)))
        assert cross_entropy(confident, [0, 1]).item() < cross_entropy(uncertain, [0, 1]).item()

    def test_mse_loss(self):
        pred = Tensor([1.0, 2.0])
        target = Tensor([0.0, 0.0])
        assert mse_loss(pred, target).item() == pytest.approx(2.5)
        assert mse_loss(pred, target, reduction="sum").item() == pytest.approx(5.0)
        assert mse_loss(pred, target, reduction="none").shape == (2,)
        with pytest.raises(AutogradError):
            mse_loss(pred, target, reduction="bad")

    def test_accuracy_metric(self):
        log_probs = Tensor(np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]]))
        assert accuracy(log_probs, [0, 1, 1]) == pytest.approx(2 / 3)
        with pytest.raises(AutogradError):
            accuracy(log_probs, [0, 1])
