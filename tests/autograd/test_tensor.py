"""Tests for the Tensor class: construction, arithmetic, shape ops."""

import numpy as np
import pytest

from repro.autograd import Tensor, as_tensor
from repro.exceptions import AutogradError


class TestConstruction:
    def test_real_promotion(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float64 and not t.is_complex

    def test_complex_promotion(self):
        t = Tensor([1 + 1j])
        assert t.dtype == np.complex128 and t.is_complex

    def test_from_tensor_shares_nothing_structural(self):
        base = Tensor([1.0, 2.0], requires_grad=True)
        copy = Tensor(base)
        assert not copy.requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_shape_size_ndim(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3) and t.size == 6 and t.ndim == 2

    def test_item_and_len(self):
        assert Tensor([[3.5]]).item() == 3.5
        assert len(Tensor([1, 2, 3])) == 3

    def test_detach(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad and np.allclose(d.data, t.data)


class TestArithmeticValues:
    def test_add_sub_mul_div(self):
        a, b = Tensor([2.0, 4.0]), Tensor([1.0, 2.0])
        assert np.allclose((a + b).data, [3, 6])
        assert np.allclose((a - b).data, [1, 2])
        assert np.allclose((a * b).data, [2, 8])
        assert np.allclose((a / b).data, [2, 2])

    def test_reflected_ops(self):
        a = Tensor([2.0])
        assert np.allclose((1.0 + a).data, [3.0])
        assert np.allclose((1.0 - a).data, [-1.0])
        assert np.allclose((3.0 * a).data, [6.0])
        assert np.allclose((4.0 / a).data, [2.0])

    def test_matmul_value(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4))
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_matmul_vector_cases(self):
        m = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        v = Tensor(np.array([1.0, 2.0, 3.0]))
        assert np.allclose((m @ v).data, m.data @ v.data)
        assert np.allclose((v @ m.transpose()).data, v.data @ m.data.T)

    def test_pow(self):
        a = Tensor([2.0, 3.0])
        assert np.allclose((a**2).data, [4, 9])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(AutogradError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_neg(self):
        assert np.allclose((-Tensor([1.0, -2.0])).data, [-1, 2])

    def test_broadcast_add(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.array([1.0, 2.0, 3.0]))
        assert (a + b).shape == (2, 3)


class TestShapeOps:
    def test_reshape(self):
        t = Tensor(np.arange(6, dtype=float))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape((3, 2)).shape == (3, 2)

    def test_transpose_and_T(self):
        t = Tensor(np.zeros((2, 5)))
        assert t.transpose().shape == (5, 2)
        assert t.T.shape == (5, 2)

    def test_getitem(self):
        t = Tensor(np.arange(10, dtype=float))
        assert np.allclose(t[2:5].data, [2, 3, 4])

    def test_sum_mean(self):
        t = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert t.sum().item() == 15
        assert t.mean().item() == pytest.approx(2.5)
        assert np.allclose(t.sum(axis=0).data, [3, 5, 7])
        assert np.allclose(t.mean(axis=1).data, [1.0, 4.0])

    def test_stack(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        stacked = Tensor.stack([a, b])
        assert stacked.shape == (2, 2)

    def test_zeros_ones(self):
        assert np.all(Tensor.zeros((2, 2)).data == 0)
        assert np.all(Tensor.ones((2, 2)).data == 1)


class TestComplexOps:
    def test_conj_real_imag_values(self):
        z = Tensor([1 + 2j, 3 - 4j])
        assert np.allclose(z.conj().data, [1 - 2j, 3 + 4j])
        assert np.allclose(z.real().data, [1, 3])
        assert np.allclose(z.imag().data, [2, -4])

    def test_abs_and_abs2(self):
        z = Tensor([3 + 4j])
        assert z.abs().item() == pytest.approx(5.0)
        assert z.abs2().item() == pytest.approx(25.0)
        assert not z.abs().is_complex and not z.abs2().is_complex

    def test_angle(self):
        z = Tensor([1j])
        assert z.angle().item() == pytest.approx(np.pi / 2)

    def test_exp_log(self):
        t = Tensor([0.0, 1.0])
        assert np.allclose(t.exp().data, np.exp([0.0, 1.0]))
        assert np.allclose(Tensor([1.0, np.e]).log().data, [0.0, 1.0])

    def test_sqrt(self):
        assert np.allclose(Tensor([4.0, 9.0]).sqrt().data, [2, 3])


class TestBackwardErrors:
    def test_backward_requires_grad(self):
        with pytest.raises(AutogradError):
            Tensor([1.0]).backward()

    def test_backward_non_scalar_needs_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(AutogradError):
            (t * 2).backward()

    def test_backward_grad_shape_mismatch(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2
        with pytest.raises(AutogradError):
            out.backward(np.ones(3))

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 3).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None
