"""Tests for the noise-injected forward pass and the NoiseAwareTrainer."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.exceptions import ConfigurationError, ShapeError
from repro.nn import Adam, CrossEntropyLoss, Trainer, TrainerConfig
from repro.onn import build_software_model
from repro.onn.spnn import SPNNArchitecture
from repro.training import (
    NoiseAwareTrainer,
    NoiseInjector,
    PerturbationSchedule,
    complex_linear_modules,
    forward_with_weight_offsets,
)
from repro.variation import UncertaintyModel

ARCH = SPNNArchitecture(layer_dims=(6, 8, 5))


def _dataset(n=48, seed=0, features=6, classes=5):
    gen = np.random.default_rng(seed)
    x = gen.standard_normal((n, features)) + 1j * gen.standard_normal((n, features))
    y = gen.integers(0, classes, n)
    return x, y


def _zero_offsets(model, draws):
    return [
        np.zeros((draws, m.out_features, m.in_features), dtype=np.complex128)
        for m in complex_linear_modules(model)
    ]


class TestForwardWithOffsets:
    def test_zero_offsets_match_plain_forward_bit_for_bit(self):
        model = build_software_model(ARCH, rng=0)
        x, y = _dataset()
        reference = model(Tensor(x))
        out = forward_with_weight_offsets(model, x, _zero_offsets(model, 3))
        assert out.shape == (3, len(y), ARCH.output_size)
        for k in range(3):
            assert np.array_equal(out.data[k], reference.data)

    def test_zero_offsets_match_plain_gradients_bit_for_bit(self):
        model = build_software_model(ARCH, rng=0)
        x, y = _dataset()
        loss_fn = CrossEntropyLoss(from_log_probs=True)
        linears = complex_linear_modules(model)

        reference_loss = loss_fn(model(Tensor(x)), y)
        model.zero_grad()
        reference_loss.backward()
        reference_grads = [m.weight.grad.copy() for m in linears]

        draws = 2
        out = forward_with_weight_offsets(model, x, _zero_offsets(model, draws))
        flat = out.reshape(draws * len(y), ARCH.output_size)
        loss = loss_fn(flat, np.tile(y, draws))
        model.zero_grad()
        loss.backward()

        assert loss.item() == reference_loss.item()
        for module, grad in zip(linears, reference_grads):
            assert np.array_equal(module.weight.grad, grad)

    def test_per_draw_rows_match_individually_perturbed_models(self):
        model = build_software_model(ARCH, rng=1)
        x, _ = _dataset(seed=3)
        gen = np.random.default_rng(9)
        linears = complex_linear_modules(model)
        offsets = [
            0.05 * (gen.standard_normal((2,) + m.weight.shape) + 1j * gen.standard_normal((2,) + m.weight.shape))
            for m in linears
        ]
        out = forward_with_weight_offsets(model, x, offsets)
        for k in range(2):
            perturbed = build_software_model(ARCH, rng=1)
            for module, offset in zip(complex_linear_modules(perturbed), offsets):
                module.set_weight_matrix(module.weight_matrix() + offset[k])
            expected = perturbed(Tensor(x))
            assert np.allclose(out.data[k], expected.data, atol=1e-12)

    def test_loss_is_mean_over_draws(self):
        model = build_software_model(ARCH, rng=1)
        x, y = _dataset(n=16, seed=4)
        loss_fn = CrossEntropyLoss(from_log_probs=True)
        gen = np.random.default_rng(5)
        linears = complex_linear_modules(model)
        offsets = [
            0.03 * (gen.standard_normal((3,) + m.weight.shape) + 1j * gen.standard_normal((3,) + m.weight.shape))
            for m in linears
        ]
        out = forward_with_weight_offsets(model, x, offsets)
        flat = out.reshape(3 * len(y), ARCH.output_size)
        joint = loss_fn(flat, np.tile(y, 3)).item()
        per_draw = [loss_fn(Tensor(out.data[k]), y).item() for k in range(3)]
        assert joint == pytest.approx(np.mean(per_draw), rel=1e-12)

    def test_validation_errors(self):
        model = build_software_model(ARCH, rng=0)
        x, _ = _dataset(n=4)
        with pytest.raises(ShapeError):
            forward_with_weight_offsets(model, x, _zero_offsets(model, 2)[:-1])
        bad_shape = _zero_offsets(model, 2)
        bad_shape[0] = bad_shape[0][:, :-1, :]
        with pytest.raises(ShapeError):
            forward_with_weight_offsets(model, x, bad_shape)
        mismatched = _zero_offsets(model, 2)
        mismatched[1] = mismatched[1][:1]
        with pytest.raises(ShapeError):
            forward_with_weight_offsets(model, x, mismatched)

    def test_requires_sequential(self):
        with pytest.raises(ConfigurationError):
            complex_linear_modules("not a model")


class TestNoiseAwareTrainer:
    def _trainer(self, model, sigma=0.01, draws=2, schedule=None, epochs=3, noise_seed=7, rng=0):
        injector = NoiseInjector(
            UncertaintyModel.both(sigma), draws=draws, recompile_every=2, rng=noise_seed
        )
        return NoiseAwareTrainer(
            model,
            Adam(model.parameters(), lr=0.02),
            injector,
            schedule=schedule,
            config=TrainerConfig(epochs=epochs, batch_size=16),
            rng=rng,
        )

    def test_fixed_seed_training_is_bit_reproducible(self):
        x, y = _dataset(n=64, seed=1)
        model_a = build_software_model(ARCH, rng=3)
        model_b = build_software_model(ARCH, rng=3)
        self._trainer(model_a).fit(x, y)
        self._trainer(model_b).fit(x, y)
        state_a, state_b = model_a.state_dict(), model_b.state_dict()
        assert set(state_a) == set(state_b)
        for key in state_a:
            assert np.array_equal(state_a[key], state_b[key])

    def test_zero_scale_schedule_matches_plain_trainer_bit_for_bit(self):
        """With the noise scheduled off, the subclass IS the base trainer."""
        x, y = _dataset(n=64, seed=2)
        noise_free = build_software_model(ARCH, rng=4)
        plain = build_software_model(ARCH, rng=4)
        self._trainer(noise_free, schedule=PerturbationSchedule.constant(0.0)).fit(x, y)
        Trainer(
            plain,
            Adam(plain.parameters(), lr=0.02),
            config=TrainerConfig(epochs=3, batch_size=16),
            rng=0,
        ).fit(x, y)
        state_a, state_b = noise_free.state_dict(), plain.state_dict()
        for key in state_a:
            assert np.array_equal(state_a[key], state_b[key])

    def test_noise_changes_the_solution(self):
        x, y = _dataset(n=64, seed=2)
        noisy = build_software_model(ARCH, rng=4)
        plain = build_software_model(ARCH, rng=4)
        self._trainer(noisy, sigma=0.02).fit(x, y)
        self._trainer(plain, schedule=PerturbationSchedule.constant(0.0)).fit(x, y)
        assert any(
            not np.allclose(noisy.state_dict()[key], plain.state_dict()[key])
            for key in noisy.state_dict()
        )

    def test_history_and_current_scale(self):
        x, y = _dataset(n=32, seed=5)
        model = build_software_model(ARCH, rng=0)
        trainer = self._trainer(
            model, schedule=PerturbationSchedule.curriculum((0.0, 1.0)), epochs=4
        )
        history = trainer.fit(x, y)
        assert history.epochs == 4
        assert trainer.current_sigma_scale == 1.0  # last epoch's scale

    def test_early_stop_shared_with_base_loop(self):
        x, y = _dataset(n=32, seed=5)
        model = build_software_model(ARCH, rng=0)
        trainer = self._trainer(model, epochs=10)
        history = trainer.fit(x, y, early_stop=lambda h: h.epochs >= 2)
        assert history.epochs == 2
