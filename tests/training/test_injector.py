"""Tests for the NoiseInjector (hardware-calibrated training noise)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.training import NoiseInjector, per_mesh_sigma_sampler
from repro.variation import UncertaintyModel


def _weights(seed=0, dims=(6, 8, 5)):
    """Random complex weight matrices for a small (6 -> 8 -> 5) network."""
    gen = np.random.default_rng(seed)
    shapes = [(dims[i + 1], dims[i]) for i in range(len(dims) - 1)]
    return [
        (gen.standard_normal(shape) + 1j * gen.standard_normal(shape)) / 3.0
        for shape in shapes
    ]


class TestOffsets:
    def test_shapes_one_per_layer(self):
        weights = _weights()
        injector = NoiseInjector(UncertaintyModel.both(0.01), draws=3, rng=1)
        offsets = injector.weight_offsets(weights)
        assert len(offsets) == len(weights)
        for weight, offset in zip(weights, offsets):
            assert offset.shape == (3,) + weight.shape
            assert offset.dtype == np.complex128
            assert np.all(np.abs(offset) < 10)  # sane magnitudes

    def test_fixed_seed_reproduces_offsets_bit_for_bit(self):
        weights = _weights()
        a = NoiseInjector(UncertaintyModel.both(0.01), draws=4, rng=42)
        b = NoiseInjector(UncertaintyModel.both(0.01), draws=4, rng=42)
        for _ in range(3):  # successive calls advance both streams identically
            off_a = a.weight_offsets(weights)
            off_b = b.weight_offsets(weights)
            for x, y in zip(off_a, off_b):
                assert np.array_equal(x, y)

    def test_draws_are_distinct(self):
        weights = _weights()
        injector = NoiseInjector(UncertaintyModel.both(0.01), draws=2, rng=0)
        offsets = injector.weight_offsets(weights)
        assert not np.array_equal(offsets[0][0], offsets[0][1])

    def test_scale_zero_returns_none(self):
        injector = NoiseInjector(UncertaintyModel.both(0.01), draws=2, rng=0)
        assert injector.weight_offsets(_weights(), sigma_scale=0.0) is None

    def test_null_model_returns_none(self):
        injector = NoiseInjector(UncertaintyModel.both(0.0), draws=2, rng=0)
        assert injector.weight_offsets(_weights()) is None

    def test_sigma_scale_equals_prescaled_model(self):
        weights = _weights()
        scaled = NoiseInjector(UncertaintyModel.both(0.02), draws=2, rng=7)
        direct = NoiseInjector(UncertaintyModel.both(0.01), draws=2, rng=7)
        off_scaled = scaled.weight_offsets(weights, sigma_scale=0.5)
        off_direct = direct.weight_offsets(weights, sigma_scale=1.0)
        for x, y in zip(off_scaled, off_direct):
            assert np.allclose(x, y, atol=1e-12)

    def test_offsets_grow_with_sigma(self):
        weights = _weights()
        small = NoiseInjector(UncertaintyModel.both(0.002), draws=4, rng=3)
        large = NoiseInjector(UncertaintyModel.both(0.02), draws=4, rng=3)
        rms = lambda offs: np.sqrt(np.mean([np.mean(np.abs(o) ** 2) for o in offs]))
        assert rms(large.weight_offsets(weights)) > 3 * rms(small.weight_offsets(weights))


class TestSnapshotCadence:
    def test_recompile_every_controls_snapshot_refresh(self):
        injector = NoiseInjector(UncertaintyModel.both(0.01), draws=1, recompile_every=2, rng=0)
        first = _weights(seed=1)
        injector.weight_offsets(first)  # compiles (step 0)
        snapshot = injector.snapshot_layers
        # Second call within the cadence: different weights, same snapshot.
        injector.weight_offsets(_weights(seed=2))
        assert [id(l) for l in injector.snapshot_layers] == [id(l) for l in snapshot]
        # Third call exceeds the cadence: snapshot is rebuilt.
        injector.weight_offsets(_weights(seed=3))
        assert [id(l) for l in injector.snapshot_layers] != [id(l) for l in snapshot]

    def test_scheduled_off_steps_age_the_snapshot(self):
        injector = NoiseInjector(UncertaintyModel.both(0.01), draws=1, recompile_every=2, rng=0)
        injector.weight_offsets(_weights(seed=1))  # compile
        snapshot = injector.snapshot_layers
        injector.weight_offsets(_weights(seed=2), sigma_scale=0.0)  # noise-free step still ages
        injector.weight_offsets(_weights(seed=3))
        assert [id(l) for l in injector.snapshot_layers] != [id(l) for l in snapshot]

    def test_layer_count_change_forces_recompile(self):
        injector = NoiseInjector(UncertaintyModel.both(0.01), draws=1, recompile_every=100, rng=0)
        injector.weight_offsets(_weights(dims=(6, 8, 5)))
        offsets = injector.weight_offsets(_weights(dims=(6, 8, 8, 5)))
        assert len(offsets) == 3


class TestCustomSampler:
    def test_per_mesh_sigma_sampler_zero_maps_give_zero_mesh_noise(self):
        weights = _weights()
        zero_maps = {}
        injector_probe = NoiseInjector(UncertaintyModel.both(0.01), draws=1, rng=0)
        injector_probe.refresh_snapshot(weights)
        for index, layer in enumerate(injector_probe.snapshot_layers):
            zero_maps[f"U_L{index}"] = np.zeros(layer.mesh_u.num_mzis)
            zero_maps[f"VH_L{index}"] = np.zeros(layer.mesh_v.num_mzis)
        injector = NoiseInjector(
            UncertaintyModel.both(0.05, perturb_sigma_stage=False),
            draws=2,
            sampler=per_mesh_sigma_sampler(zero_maps),
            rng=0,
        )
        offsets = injector.weight_offsets(weights)
        for offset in offsets:
            assert np.allclose(offset, 0.0, atol=1e-10)

    def test_sampler_layer_count_mismatch_raises(self):
        injector = NoiseInjector(
            UncertaintyModel.both(0.01),
            draws=1,
            sampler=lambda layers, model, gens: [],
            rng=0,
        )
        with pytest.raises(ConfigurationError):
            injector.weight_offsets(_weights())


class TestDeviceInjector:
    """``device='gpu'`` runs the K-draw forward device-resident.

    On CPU-only machines the device is the strict mock namespace
    (``REPRO_GPU_ARRAY_BACKEND=mock_device``), whose arithmetic is NumPy's
    — so every offset must come back **bit-identical** to the CPU
    injector, already re-hosted for the autograd forward.
    """

    @pytest.fixture(autouse=True)
    def _mock_device(self, monkeypatch):
        from repro.arrays import available_array_backends
        from repro.execution.backends import GPU_ARRAY_BACKEND_ENV, default_gpu_array_backend

        if default_gpu_array_backend() not in available_array_backends():
            monkeypatch.setenv(GPU_ARRAY_BACKEND_ENV, "mock_device")

    @pytest.mark.parametrize("with_workspace", [False, True])
    def test_offsets_bit_identical_to_cpu(self, with_workspace):
        from repro.training.workspace import VectorizedWorkspace

        weights = _weights()
        host_workspace = VectorizedWorkspace() if with_workspace else None
        cpu = NoiseInjector(
            UncertaintyModel.both(0.01), draws=3, rng=5, workspace=host_workspace
        )
        gpu = NoiseInjector(
            UncertaintyModel.both(0.01),
            draws=3,
            rng=5,
            device="gpu",
        )
        for _ in range(3):  # successive steps advance both streams identically
            for host, device in zip(cpu.weight_offsets(weights), gpu.weight_offsets(weights)):
                assert isinstance(device, np.ndarray)
                assert np.array_equal(device, host)

    def test_rescaled_cached_draws_bit_identical_to_cpu(self):
        weights = _weights()
        kwargs = dict(draws=2, rng=9, reuse_draws=True, recompile_every=3)
        cpu = NoiseInjector(UncertaintyModel.both(0.01), **kwargs)
        gpu = NoiseInjector(UncertaintyModel.both(0.01), device="gpu", **kwargs)
        for scale in (1.0, 0.5, 0.25, 1.0):
            for host, device in zip(
                cpu.weight_offsets(weights, sigma_scale=scale),
                gpu.weight_offsets(weights, sigma_scale=scale),
            ):
                assert np.array_equal(device, host)

    def test_training_step_mock_exact_vs_cpu(self):
        """A full noise-aware fit lands on bit-identical weights."""
        from repro.nn import Adam, TrainerConfig
        from repro.onn import build_software_model
        from repro.onn.spnn import SPNNArchitecture
        from repro.training import NoiseAwareTrainer

        arch = SPNNArchitecture(layer_dims=(6, 8, 5))
        gen = np.random.default_rng(3)
        x = gen.standard_normal((48, 6)) + 1j * gen.standard_normal((48, 6))
        y = gen.integers(0, 5, 48)

        def fit(device):
            model = build_software_model(arch, rng=2)
            injector = NoiseInjector(
                UncertaintyModel.both(0.01),
                draws=2,
                recompile_every=2,
                rng=7,
                device=device,
            )
            trainer = NoiseAwareTrainer(
                model,
                Adam(model.parameters(), lr=0.02),
                injector,
                config=TrainerConfig(epochs=2, batch_size=16),
                rng=0,
            )
            trainer.fit(x, y)
            return model.state_dict(), trainer.history

        cpu_state, cpu_history = fit(None)
        gpu_state, gpu_history = fit("gpu")
        assert set(cpu_state) == set(gpu_state)
        for key in cpu_state:
            assert np.array_equal(cpu_state[key], gpu_state[key])
        assert cpu_history.train_loss == gpu_history.train_loss

    def test_invalid_device_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseInjector(UncertaintyModel.both(0.01), device="tpu")


class TestValidation:
    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            NoiseInjector(UncertaintyModel.both(0.01), draws=0)
        with pytest.raises(ConfigurationError):
            NoiseInjector(UncertaintyModel.both(0.01), recompile_every=0)

    def test_negative_scale_rejected(self):
        injector = NoiseInjector(UncertaintyModel.both(0.01), rng=0)
        with pytest.raises(ConfigurationError):
            injector.weight_offsets(_weights(), sigma_scale=-0.5)
