"""Tests for the perturbation schedules."""

import pytest

from repro.exceptions import ConfigurationError
from repro.training import SCHEDULE_KINDS, PerturbationSchedule


class TestConstructors:
    def test_constant(self):
        schedule = PerturbationSchedule.constant(0.7)
        assert schedule.scales(4) == (0.7, 0.7, 0.7, 0.7)

    def test_linear_ramp_endpoints(self):
        schedule = PerturbationSchedule.linear_ramp(0.0, 1.0)
        scales = schedule.scales(5)
        assert scales[0] == 0.0 and scales[-1] == 1.0
        assert scales == (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_linear_single_epoch_uses_end_scale(self):
        assert PerturbationSchedule.linear_ramp(0.2, 0.9).scales(1) == (0.9,)

    def test_curriculum_even_segments(self):
        schedule = PerturbationSchedule.curriculum((0.0, 0.5, 1.0))
        assert schedule.scales(6) == (0.0, 0.0, 0.5, 0.5, 1.0, 1.0)

    def test_curriculum_uneven_epochs_last_level_absorbs_remainder(self):
        schedule = PerturbationSchedule.curriculum((0.0, 1.0))
        assert schedule.scales(5) == (0.0, 0.0, 0.0, 1.0, 1.0)

    def test_curriculum_more_levels_than_epochs(self):
        schedule = PerturbationSchedule.curriculum((0.1, 0.2, 0.3, 0.4))
        assert schedule.scales(2) == (0.1, 0.3)

    def test_named(self):
        for name in SCHEDULE_KINDS:
            assert PerturbationSchedule.named(name).kind == name
        with pytest.raises(ConfigurationError):
            PerturbationSchedule.named("exponential")


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            PerturbationSchedule(kind="exp")

    def test_negative_scales(self):
        with pytest.raises(ConfigurationError):
            PerturbationSchedule(kind="linear", start_scale=-0.1)
        with pytest.raises(ConfigurationError):
            PerturbationSchedule.curriculum((0.5, -1.0))

    def test_curriculum_requires_levels(self):
        with pytest.raises(ConfigurationError):
            PerturbationSchedule(kind="curriculum")

    def test_levels_rejected_for_other_kinds(self):
        with pytest.raises(ConfigurationError):
            PerturbationSchedule(kind="constant", levels=(1.0,))

    def test_epoch_bounds(self):
        schedule = PerturbationSchedule.constant()
        with pytest.raises(ConfigurationError):
            schedule.scale(0, 0)
        with pytest.raises(ConfigurationError):
            schedule.scale(5, 5)
        with pytest.raises(ConfigurationError):
            schedule.scale(-1, 5)


class TestChangeEpochs:
    def test_constant_never_changes(self):
        assert PerturbationSchedule.constant(1.0).change_epochs(10) == ()

    def test_linear_ramp_changes_every_epoch(self):
        schedule = PerturbationSchedule.linear_ramp(0.0, 1.0)
        assert schedule.change_epochs(5) == (1, 2, 3, 4)

    def test_curriculum_changes_at_level_boundaries(self):
        schedule = PerturbationSchedule.curriculum((0.0, 0.0, 0.5, 1.0))
        # 8 epochs, 4 levels of 2 epochs each; the first boundary is silent
        # (0.0 -> 0.0), the others step the scale.
        assert schedule.change_epochs(8) == (4, 6)

    def test_single_epoch_has_no_boundaries(self):
        assert PerturbationSchedule.linear_ramp().change_epochs(1) == ()
