"""Workspace arena semantics and the injector's amortized/incremental modes."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.training import (
    NoiseInjector,
    VectorizedWorkspace,
    per_mesh_sigma_sampler,
    process_workspace,
    reset_process_workspace,
)
from repro.variation import UncertaintyModel


def _weights(seed=0, dims=(6, 8, 5)):
    gen = np.random.default_rng(seed)
    shapes = [(dims[i + 1], dims[i]) for i in range(len(dims) - 1)]
    return [
        (gen.standard_normal(shape) + 1j * gen.standard_normal(shape)) / 3.0
        for shape in shapes
    ]


class TestVectorizedWorkspace:
    def test_same_key_reuses_the_allocation(self):
        ws = VectorizedWorkspace()
        first = ws.buffer("a", (4, 5), np.float64)
        second = ws.buffer("a", (4, 5), np.float64)
        assert first.base is second.base
        assert ws.num_buffers == 1

    def test_smaller_request_is_a_view_of_the_same_backing(self):
        ws = VectorizedWorkspace()
        full = ws.buffer("a", (10, 3), np.float64)
        partial = ws.buffer("a", (4, 3), np.float64)
        assert partial.shape == (4, 3)
        assert partial.base is full.base
        # ... and the full size comes back without reallocating.
        again = ws.buffer("a", (10, 3), np.float64)
        assert again.base is full.base

    def test_growth_and_dtype_change_reallocate(self):
        ws = VectorizedWorkspace()
        small = ws.buffer("a", (2, 2), np.float64)
        grown = ws.buffer("a", (8, 8), np.float64)
        assert grown.base is not small.base
        complex_buffer = ws.buffer("a", (2, 2), np.complex128)
        assert complex_buffer.dtype == np.complex128

    def test_distinct_keys_never_alias(self):
        ws = VectorizedWorkspace()
        a = ws.buffer(("stage", 0), (3, 3), np.float64)
        b = ws.buffer(("stage", 1), (3, 3), np.float64)
        a[...] = 1.0
        b[...] = 2.0
        assert np.all(a == 1.0) and np.all(b == 2.0)

    def test_negative_shape_rejected(self):
        with pytest.raises(ValueError):
            VectorizedWorkspace().buffer("a", (-1, 2))

    def test_clear_and_nbytes(self):
        ws = VectorizedWorkspace()
        ws.buffer("a", (4,), np.float64)
        assert ws.nbytes >= 4 * 8
        ws.clear()
        assert ws.num_buffers == 0

    def test_process_workspace_is_a_singleton_until_reset(self):
        reset_process_workspace()
        first = process_workspace()
        assert process_workspace() is first
        reset_process_workspace()
        assert process_workspace() is not first


class TestInjectorWorkspace:
    def test_offsets_bit_identical_with_and_without_workspace(self):
        weights = _weights()
        plain = NoiseInjector(UncertaintyModel.both(0.01), draws=3, rng=42)
        backed = NoiseInjector(
            UncertaintyModel.both(0.01), draws=3, rng=42, workspace=VectorizedWorkspace()
        )
        for _ in range(3):
            for expected, actual in zip(
                plain.weight_offsets(weights), backed.weight_offsets(weights)
            ):
                assert np.array_equal(expected, actual)

    def test_workspace_buffers_are_recycled_across_steps(self):
        weights = _weights()
        injector = NoiseInjector(
            UncertaintyModel.both(0.01), draws=2, rng=0, workspace=VectorizedWorkspace()
        )
        first = injector.weight_offsets(weights)
        second = injector.weight_offsets(weights)
        for a, b in zip(first, second):
            assert a.base is b.base  # same arena allocation, new contents


class TestDrawReuse:
    def test_draws_reused_within_a_recompile_window(self):
        weights = _weights()
        injector = NoiseInjector(
            UncertaintyModel.both(0.01), draws=3, recompile_every=4, rng=9, reuse_draws=True
        )
        window = [np.copy(o) for o in injector.weight_offsets(weights)]
        for _ in range(3):  # steps 2-4 of the window reuse the draw verbatim
            for cached, again in zip(window, injector.weight_offsets(weights)):
                assert np.array_equal(cached, again)
        # Step 5 starts a new window: recompile + fresh draw.
        fresh = injector.weight_offsets(weights)
        assert not all(
            np.array_equal(cached, new) for cached, new in zip(window, fresh)
        )

    def test_reuse_is_deterministic_across_runs(self):
        weights = _weights()

        def run():
            injector = NoiseInjector(
                UncertaintyModel.both(0.01),
                draws=2,
                recompile_every=3,
                rng=123,
                reuse_draws=True,
            )
            collected = []
            for _ in range(7):
                collected.append([np.copy(o) for o in injector.weight_offsets(weights)])
            return collected

        for step_a, step_b in zip(run(), run()):
            for a, b in zip(step_a, step_b):
                assert np.array_equal(a, b)

    def test_scale_change_rescales_exactly_for_the_gaussian_sampler(self):
        weights = _weights()
        rescaled = NoiseInjector(
            UncertaintyModel.both(0.02), draws=2, recompile_every=10, rng=7, reuse_draws=True
        )
        direct = NoiseInjector(
            UncertaintyModel.both(0.02), draws=2, recompile_every=10, rng=7, reuse_draws=True
        )
        rescaled.weight_offsets(weights, sigma_scale=0.5)
        via_rescale = rescaled.weight_offsets(weights, sigma_scale=1.0)
        via_draw = direct.weight_offsets(weights, sigma_scale=1.0)
        # The rescale path reuses the window's standard normals at the new
        # sigma — the same perturbations the direct draw would have made
        # (up to float rescaling round-off).
        for a, b in zip(via_rescale, via_draw):
            assert np.allclose(a, b, atol=1e-12)

    def test_scale_change_with_custom_sampler_redraws(self):
        weights = _weights(dims=(5, 5))
        sampler = per_mesh_sigma_sampler({"U_L0": np.full(10, 0.01)})
        injector = NoiseInjector(
            UncertaintyModel.both(0.01),
            draws=2,
            recompile_every=10,
            rng=5,
            sampler=sampler,
            reuse_draws=True,
        )
        first = [np.copy(o) for o in injector.weight_offsets(weights, sigma_scale=0.5)]
        second = injector.weight_offsets(weights, sigma_scale=1.0)
        # A redraw consumed fresh streams: the offsets are not a rescale of
        # the cached ones.
        assert not any(np.allclose(2.0 * a, b) for a, b in zip(first, second))

    def test_zero_scale_steps_do_not_touch_the_cache(self):
        weights = _weights()
        injector = NoiseInjector(
            UncertaintyModel.both(0.01), draws=2, recompile_every=10, rng=13, reuse_draws=True
        )
        cached = [np.copy(o) for o in injector.weight_offsets(weights)]
        assert injector.weight_offsets(weights, sigma_scale=0.0) is None
        for a, b in zip(cached, injector.weight_offsets(weights)):
            assert np.array_equal(a, b)


class TestIncrementalRecompile:
    def test_incremental_matches_exact_snapshot_numerically(self):
        weights = _weights()
        exact = NoiseInjector(UncertaintyModel.both(0.01), draws=2, recompile_every=2, rng=1)
        warm = NoiseInjector(
            UncertaintyModel.both(0.01), draws=2, recompile_every=2, rng=1, incremental=True
        )
        moving = [np.copy(w) for w in weights]
        gen = np.random.default_rng(99)
        for step in range(6):
            offsets_exact = exact.weight_offsets(moving)
            offsets_warm = warm.weight_offsets(moving)
            for a, b in zip(offsets_exact, offsets_warm):
                if step == 0:
                    # The initial compile is exact in both injectors and the
                    # streams are identical: bit-identical offsets.
                    assert np.array_equal(a, b)
                else:
                    # Warm snapshots use a (valid) different SVD basis, so
                    # the offsets are different draws of the same noise —
                    # equal in scale, not elementwise.
                    ratio = np.linalg.norm(a) / np.linalg.norm(b)
                    assert 0.5 < ratio < 2.0
            # Both snapshots reconstruct the same weights exactly.
            for layer_exact, layer_warm in zip(exact.snapshot_layers, warm.snapshot_layers):
                assert np.max(np.abs(layer_exact.ideal_matrix() - layer_warm.ideal_matrix())) < 1e-9
            for w in moving:
                w += 0.003 * (
                    gen.standard_normal(w.shape) + 1j * gen.standard_normal(w.shape)
                )
        assert warm.incremental_recompiles >= 1
        assert warm.exact_recompiles >= 1  # the initial compile is exact

    def test_drift_threshold_forces_exact_recompile(self):
        weights = _weights()
        injector = NoiseInjector(
            UncertaintyModel.both(0.01),
            draws=1,
            recompile_every=1,
            rng=3,
            incremental=True,
            drift_threshold=1e-6,
        )
        injector.weight_offsets(weights)
        moved = [w + 0.1 for w in weights]
        injector.weight_offsets(moved)
        assert injector.exact_recompiles == 2
        assert injector.incremental_recompiles == 0

    def test_invalid_drift_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseInjector(UncertaintyModel.both(0.01), drift_threshold=0.0)
