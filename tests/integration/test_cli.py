"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for identifier in ("fig2", "fig3", "exp1", "exp2", "baseline"):
        assert identifier in out


def test_fig2_runs_and_writes_output(tmp_path, capsys):
    output = tmp_path / "fig2.json"
    assert main(["fig2", "--smoke", "--output", str(output)]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2" in out
    payload = json.loads(output.read_text())
    assert "peak_deviation" in payload


def test_fig3_iterations_override(capsys):
    assert main(["fig3", "--smoke", "--iterations", "3"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 3" in out


def test_unknown_experiment_raises():
    from repro.exceptions import ExperimentError

    with pytest.raises(ExperimentError):
        main(["fig99"])


def test_parser_flags():
    parser = build_parser()
    args = parser.parse_args(["exp1", "--smoke", "--iterations", "7"])
    assert args.experiment == "exp1" and args.smoke and args.iterations == 7
