"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for identifier in ("fig2", "fig3", "exp1", "exp2", "exp3", "yield", "baseline"):
        assert identifier in out


def test_fig2_runs_and_writes_output(tmp_path, capsys):
    output = tmp_path / "fig2.json"
    assert main(["fig2", "--smoke", "--output", str(output)]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2" in out
    payload = json.loads(output.read_text())
    assert "peak_deviation" in payload


def test_fig3_iterations_override(capsys):
    assert main(["fig3", "--smoke", "--iterations", "3"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 3" in out


def test_unknown_experiment_raises():
    from repro.exceptions import ExperimentError

    with pytest.raises(ExperimentError):
        main(["fig99"])


def test_parser_flags():
    parser = build_parser()
    args = parser.parse_args(["exp1", "--smoke", "--iterations", "7"])
    assert args.experiment == "exp1" and args.smoke and args.iterations == 7
    assert args.workers is None
    args = parser.parse_args(["yield", "--workers", "2"])
    assert args.experiment == "yield" and args.workers == 2


def test_workers_flag_rejects_non_positive_values(capsys):
    # Validated at parse time, before any training starts.
    with pytest.raises(SystemExit):
        build_parser().parse_args(["yield", "--workers", "0"])
    assert "must be >= 1" in capsys.readouterr().err


def test_workers_flag_rejected_for_experiments_without_knob(capsys):
    # fig2 is a deterministic surface scan with no Monte Carlo workers knob.
    with pytest.raises(SystemExit):
        main(["fig2", "--smoke", "--workers", "2"])
    assert "does not support --workers" in capsys.readouterr().err
    # summary/list do not run Monte Carlo either; the flag errors instead of
    # being silently ignored.
    with pytest.raises(SystemExit):
        main(["summary", "--smoke", "--workers", "2"])
    assert "does not support --workers" in capsys.readouterr().err


def test_yield_smoke_runs_with_workers(tmp_path, capsys):
    """End-to-end: the yield sweep through the CLI on the multiprocess path."""
    output = tmp_path / "yield.json"
    assert main(["yield", "--smoke", "--iterations", "4", "--workers", "2", "--output", str(output)]) == 0
    out = capsys.readouterr().out
    assert "Yield sweep" in out
    assert "max tolerable sigma" in out
    payload = json.loads(output.read_text())
    assert "estimates" in payload and "nominal_accuracy" in payload


def test_info_command(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "spnn-repro environment diagnostics" in out
    assert "platform" in out
    assert "cpus available" in out
    assert "array backend" in out
    assert "sweep kernel" in out
    assert "numpy" in out


def test_info_writes_json(tmp_path, capsys):
    output = tmp_path / "info.json"
    assert main(["info", "--output", str(output)]) == 0
    capsys.readouterr()
    payload = json.loads(output.read_text())
    assert payload["cpus_available"] >= 1
    assert payload["array_backends"]["numpy"]["available"] is True
    assert "looped" in payload["sweep_kernels"]
    for entry in payload["sweep_kernels"].values():
        assert entry["available"] == (entry["reason"] is None)


def test_info_rejects_run_only_flags(capsys):
    with pytest.raises(SystemExit):
        main(["info", "--workers", "2"])
    assert "does not support --workers" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["info", "--trace", "t.jsonl"])
    assert "does not support --trace" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["list", "--progress"])
    assert "does not support --trace" in capsys.readouterr().err


def test_yield_smoke_with_trace_and_metrics(tmp_path, capsys):
    """End-to-end: traced sharded yield sweep writes trace + metrics files."""
    from repro.observability import MetricsReport, read_trace

    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.json"
    assert (
        main(
            [
                "yield", "--smoke", "--iterations", "4", "--workers", "2",
                "--trace", str(trace), "--metrics-out", str(metrics),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Yield sweep" in out
    assert f"trace written to {trace}" in out
    assert f"metrics report written to {metrics}" in out

    records = read_trace(str(trace))
    kinds = {record["type"] for record in records}
    assert {"meta", "span", "frame"} <= kinds
    span_names = {r["name"] for r in records if r["type"] == "span"}
    assert "yield/sweep" in span_names

    report = MetricsReport.load(str(metrics))
    assert any(entry["name"] == "yield/sweep" for entry in report.spans)
    schedule = report.chunk_schedule(label="yield")
    assert schedule, "the traced sweep must record its chunk frames"
    # The frames reconstruct the planned contiguous chunking exactly.
    position = 0
    for start, count in schedule:
        assert start == position and count >= 1
        position += count


def test_progress_flag_prints_heartbeats(capsys):
    assert main(["exp1", "--smoke", "--iterations", "4", "--progress"]) == 0
    out = capsys.readouterr().out
    assert "[progress]" in out
    assert "chunk" in out


def test_trace_does_not_change_results(tmp_path, capsys):
    """ISSUE invariant at the CLI surface: --trace output == untraced output."""
    plain = tmp_path / "plain.json"
    traced = tmp_path / "traced.json"
    assert main(["exp1", "--smoke", "--iterations", "4", "--output", str(plain)]) == 0
    assert (
        main(
            [
                "exp1", "--smoke", "--iterations", "4",
                "--output", str(traced), "--trace", str(tmp_path / "t.jsonl"),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert json.loads(plain.read_text()) == json.loads(traced.read_text())
