"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for identifier in ("fig2", "fig3", "exp1", "exp2", "exp3", "yield", "baseline"):
        assert identifier in out


def test_fig2_runs_and_writes_output(tmp_path, capsys):
    output = tmp_path / "fig2.json"
    assert main(["fig2", "--smoke", "--output", str(output)]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2" in out
    payload = json.loads(output.read_text())
    assert "peak_deviation" in payload


def test_fig3_iterations_override(capsys):
    assert main(["fig3", "--smoke", "--iterations", "3"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 3" in out


def test_unknown_experiment_raises():
    from repro.exceptions import ExperimentError

    with pytest.raises(ExperimentError):
        main(["fig99"])


def test_parser_flags():
    parser = build_parser()
    args = parser.parse_args(["exp1", "--smoke", "--iterations", "7"])
    assert args.experiment == "exp1" and args.smoke and args.iterations == 7
    assert args.workers is None
    args = parser.parse_args(["yield", "--workers", "2"])
    assert args.experiment == "yield" and args.workers == 2


def test_workers_flag_rejects_non_positive_values(capsys):
    # Validated at parse time, before any training starts.
    with pytest.raises(SystemExit):
        build_parser().parse_args(["yield", "--workers", "0"])
    assert "must be >= 1" in capsys.readouterr().err


def test_workers_flag_rejected_for_experiments_without_knob(capsys):
    # fig2 is a deterministic surface scan with no Monte Carlo workers knob.
    with pytest.raises(SystemExit):
        main(["fig2", "--smoke", "--workers", "2"])
    assert "does not support --workers" in capsys.readouterr().err
    # summary/list do not run Monte Carlo either; the flag errors instead of
    # being silently ignored.
    with pytest.raises(SystemExit):
        main(["summary", "--smoke", "--workers", "2"])
    assert "does not support --workers" in capsys.readouterr().err


def test_yield_smoke_runs_with_workers(tmp_path, capsys):
    """End-to-end: the yield sweep through the CLI on the multiprocess path."""
    output = tmp_path / "yield.json"
    assert main(["yield", "--smoke", "--iterations", "4", "--workers", "2", "--output", str(output)]) == 0
    out = capsys.readouterr().out
    assert "Yield sweep" in out
    assert "max tolerable sigma" in out
    payload = json.loads(output.read_text())
    assert "estimates" in payload and "nominal_accuracy" in payload
