"""Integration tests: the full paper pipeline wired together."""

import numpy as np
import pytest

from repro.analysis import rvd
from repro.datasets import fft_crop_features, generate_dataset
from repro.mesh import MZIMesh, PhotonicLinearLayer
from repro.onn import SPNNArchitecture, build_software_model, extract_weights, spnn_from_model
from repro.utils import random_unitary
from repro.variation import (
    ThermalCrosstalkModel,
    UncertaintyModel,
    ZoneGrid,
    sample_mesh_perturbation,
    sample_network_perturbation,
)


class TestWeightsToHardwarePipeline:
    def test_untrained_model_compiles_and_agrees_with_software(self):
        """Software model -> weights -> SVD -> Clements meshes -> identical inference."""
        arch = SPNNArchitecture(layer_dims=(16, 16, 16, 10))
        model = build_software_model(arch, rng=0)
        spnn = spnn_from_model(model, arch)
        data = generate_dataset(20, rng=0)
        features = fft_crop_features(data.images, crop=4)
        soft = spnn.forward_software(features)
        hard = spnn.forward_hardware(features)
        assert np.allclose(soft, hard, atol=1e-6)

    def test_weights_roundtrip_through_photonic_layer(self):
        arch = SPNNArchitecture(layer_dims=(16, 16, 16, 10))
        model = build_software_model(arch, rng=1)
        for weight in extract_weights(model):
            layer = PhotonicLinearLayer(weight)
            assert layer.reconstruction_error() < 1e-7


class TestTrainedSystemUnderUncertainty(object):
    def test_accuracy_degrades_monotonically_on_average(self, small_task):
        """System-level sanity: larger sigma -> lower mean accuracy (EXP 1 shape)."""
        spnn = small_task.spnn
        features, labels = small_task.test_features, small_task.test_labels
        means = []
        for sigma in (0.0, 0.02, 0.08):
            if sigma == 0.0:
                means.append(spnn.accuracy(features, labels))
                continue
            model = UncertaintyModel.both(sigma)
            accs = [
                spnn.accuracy(
                    features,
                    labels,
                    perturbations=sample_network_perturbation(spnn.photonic_layers, model, rng=seed),
                )
                for seed in range(4)
            ]
            means.append(float(np.mean(accs)))
        assert means[0] > means[1] > means[2]

    def test_zonal_perturbation_touches_only_target_zone(self, small_task):
        """EXP 2 plumbing: a zone sigma map perturbs only the zone's devices."""
        mesh = dict(small_task.spnn.unitary_meshes())["U_L0"]
        grid = ZoneGrid(mesh, 2, 2)
        zone = grid.zones()[0]
        sigma_map = grid.sigma_map(zone, zone_sigma=0.2, background_sigma=0.0)
        model = UncertaintyModel.both(0.05)
        perturbation = sample_mesh_perturbation(
            mesh, model, rng=0, sigma_phs_per_mzi=sigma_map, sigma_bes_per_mzi=sigma_map
        )
        mask = grid.mask_for_zone(zone)
        assert np.allclose(perturbation.delta_theta[~mask], 0.0)
        assert not np.allclose(perturbation.delta_theta[mask], 0.0)


class TestLayerLevelConsistency:
    def test_rvd_grows_with_uncertainty_level(self):
        """Layer-level sanity (Fig. 3 direction): more uncertainty -> larger RVD."""
        mesh = MZIMesh.from_unitary(random_unitary(5, rng=5))
        reference = mesh.ideal_matrix()

        def mean_rvd_at(sigma):
            model = UncertaintyModel.both(sigma)
            values = [
                rvd(mesh.matrix(sample_mesh_perturbation(mesh, model, rng=seed)), reference)
                for seed in range(10)
            ]
            return np.mean(values)

        assert mean_rvd_at(0.02) < mean_rvd_at(0.08)

    def test_thermal_crosstalk_composes_with_random_variations(self):
        mesh = MZIMesh.from_unitary(random_unitary(6, rng=6))
        crosstalk = ThermalCrosstalkModel(coupling=0.03).perturbation(mesh)
        random_part = sample_mesh_perturbation(mesh, UncertaintyModel.both(0.02), rng=0)
        combined_theta = crosstalk.delta_theta + random_part.delta_theta
        from repro.mesh import MeshPerturbation

        combined = MeshPerturbation(delta_theta=combined_theta, delta_phi=crosstalk.delta_phi)
        perturbed = mesh.matrix(combined)
        assert perturbed.shape == (6, 6)
        assert rvd(perturbed, mesh.ideal_matrix()) > 0.0
