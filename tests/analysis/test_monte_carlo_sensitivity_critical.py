"""Tests for the Monte Carlo engine, sensitivity maps and criticality ranking."""

import numpy as np
import pytest

from repro.analysis import (
    ELEMENT_LABELS,
    MonteCarloRunner,
    device_sensitivity_map,
    exact_relative_deviation,
    first_order_model_error,
    per_mzi_rvd_criticality,
    score_components,
)
from repro.mesh import MZIMesh
from repro.utils import random_unitary
from repro.variation import UncertaintyModel


class TestMonteCarloRunner:
    def test_runs_requested_iterations(self):
        runner = MonteCarloRunner(iterations=25)
        result = runner.run(lambda gen: gen.normal(), rng=0)
        assert result.iterations == 25
        assert result.samples.shape == (25,)

    def test_reproducible_with_seed(self):
        runner = MonteCarloRunner(iterations=10)
        a = runner.run(lambda gen: gen.normal(), rng=3)
        b = runner.run(lambda gen: gen.normal(), rng=3)
        assert np.allclose(a.samples, b.samples)

    def test_iterations_use_independent_streams(self):
        runner = MonteCarloRunner(iterations=50)
        result = runner.run(lambda gen: gen.normal(), rng=0)
        assert len(np.unique(np.round(result.samples, 10))) == 50

    def test_mean_estimate_converges(self):
        runner = MonteCarloRunner(iterations=2000)
        result = runner.run(lambda gen: gen.normal(3.0, 1.0), rng=1)
        assert result.mean == pytest.approx(3.0, abs=0.1)
        assert result.summary.margin_of_error < 0.1

    def test_run_many_labels(self):
        runner = MonteCarloRunner(iterations=5)
        results = runner.run_many({"a": lambda g: 1.0, "b": lambda g: 2.0}, rng=0)
        assert results["a"].mean == 1.0 and results["b"].mean == 2.0
        assert results["a"].label == "a"

    def test_validation(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(iterations=0)
        with pytest.raises(ValueError):
            MonteCarloRunner(iterations=10, confidence=1.5)
        with pytest.raises(ValueError):
            MonteCarloRunner(iterations=10, chunk_size=0)


class TestMonteCarloRunnerBatched:
    def test_run_batched_equals_run_for_matching_trials(self):
        """A batch trial consuming each stream like the scalar trial is bit-identical."""
        runner = MonteCarloRunner(iterations=40)
        looped = runner.run(lambda gen: gen.normal(), rng=7)
        batched = runner.run_batched(
            lambda gens: np.array([g.normal() for g in gens]), rng=7
        )
        assert np.array_equal(looped.samples, batched.samples)

    def test_chunking_preserves_streams(self):
        full = MonteCarloRunner(iterations=30).run_batched(
            lambda gens: np.array([g.normal() for g in gens]), rng=3
        )
        chunked = MonteCarloRunner(iterations=30, chunk_size=7).run_batched(
            lambda gens: np.array([g.normal() for g in gens]), rng=3
        )
        assert np.array_equal(full.samples, chunked.samples)

    def test_batch_trial_shape_enforced(self):
        runner = MonteCarloRunner(iterations=5)
        from repro.exceptions import ShapeError

        with pytest.raises(ShapeError):
            runner.run_batched(lambda gens: np.zeros(len(gens) + 1), rng=0)

    def test_label_and_summary(self):
        result = MonteCarloRunner(iterations=10).run_batched(
            lambda gens: np.ones(len(gens)), rng=0, label="ones"
        )
        assert result.label == "ones"
        assert result.mean == 1.0 and result.iterations == 10


class TestSensitivityMap:
    def test_grid_shapes(self):
        sens = device_sensitivity_map(k=0.05, grid_points=16)
        assert sens.relative_deviation.shape == (16, 16, 2, 2)
        assert sens.element(0, 1).shape == (16, 16)
        assert sens.element_by_label("T21").shape == (16, 16)

    def test_unknown_label_rejected(self):
        sens = device_sensitivity_map(grid_points=8)
        with pytest.raises(KeyError):
            sens.element_by_label("T33")

    def test_monotonic_growth_reproduces_paper_claim(self):
        """Fig. 2: relative deviation grows with the tuned phase angles."""
        sens = device_sensitivity_map(k=0.05, grid_points=48)
        for label in ELEMENT_LABELS:
            assert sens.monotonic_along_axes(label), f"{label} not growing with angles"

    def test_peak_deviation_positive(self):
        peaks = device_sensitivity_map(grid_points=16).peak_deviation()
        assert all(value > 0 for value in peaks.values())

    def test_zero_k_gives_zero_deviation(self):
        sens = device_sensitivity_map(k=0.0, grid_points=8)
        finite = sens.relative_deviation[np.isfinite(sens.relative_deviation)]
        assert np.allclose(finite, 0.0)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            device_sensitivity_map(grid_points=1)

    def test_exact_deviation_close_to_first_order_for_small_k(self):
        errors = first_order_model_error(k=0.01, grid_points=12)
        assert all(np.isnan(v) or v < 0.2 for v in errors.values())

    def test_exact_deviation_nan_at_zero_magnitude(self):
        out = exact_relative_deviation(0.0, 0.0, 0.05)
        assert np.isnan(out[0, 0])


class TestCriticality:
    def test_per_mzi_rvd_scores_all_devices(self):
        mesh = MZIMesh.from_unitary(random_unitary(5, rng=0))
        report = per_mzi_rvd_criticality(mesh, UncertaintyModel.both(0.05), iterations=20, rng=0)
        assert len(report.scores) == mesh.num_mzis
        assert report.as_array().shape == (10,)
        assert all(score.score > 0 for score in report.scores)

    def test_scores_are_non_uniform(self):
        """The paper's Fig. 3 claim: different MZIs have different impact."""
        mesh = MZIMesh.from_unitary(random_unitary(5, rng=1))
        report = per_mzi_rvd_criticality(mesh, UncertaintyModel.both(0.05), iterations=40, rng=0)
        assert report.spread > 0.1

    def test_ranking_order(self):
        mesh = MZIMesh.from_unitary(random_unitary(4, rng=2))
        report = per_mzi_rvd_criticality(mesh, UncertaintyModel.both(0.05), iterations=15, rng=0)
        ranked = report.ranked()
        assert ranked[0].score >= ranked[-1].score
        assert report.most_critical(1)[0] == ranked[0]
        assert report.least_critical(1)[0] == ranked[-1]

    def test_reproducible_with_seed(self):
        mesh = MZIMesh.from_unitary(random_unitary(4, rng=3))
        model = UncertaintyModel.both(0.05)
        a = per_mzi_rvd_criticality(mesh, model, iterations=10, rng=5).as_array()
        b = per_mzi_rvd_criticality(mesh, model, iterations=10, rng=5).as_array()
        assert np.allclose(a, b)

    @pytest.mark.parametrize("scheme", ["clements", "reck"])
    def test_vectorized_path_is_bit_identical(self, scheme):
        mesh = MZIMesh.from_unitary(random_unitary(5, rng=6), scheme=scheme)
        model = UncertaintyModel.both(0.05)
        fast = per_mzi_rvd_criticality(mesh, model, iterations=15, rng=2, vectorized=True)
        slow = per_mzi_rvd_criticality(mesh, model, iterations=15, rng=2, vectorized=False)
        assert np.array_equal(fast.as_array(), slow.as_array())
        assert [c.std for c in fast.scores] == [c.std for c in slow.scores]

    def test_iterations_validation(self):
        mesh = MZIMesh.from_unitary(random_unitary(3, rng=4))
        with pytest.raises(ValueError):
            per_mzi_rvd_criticality(mesh, UncertaintyModel.both(0.05), iterations=0)

    def test_score_components_generic(self):
        report = score_components(
            component_ids=[0, 1, 2],
            metric_fn=lambda cid, gen: float(cid) + 0.0 * gen.normal(),
            iterations=5,
            rng=0,
            metric="identity",
        )
        assert report.metric == "identity"
        assert report.ranked()[0].identifier == 2
        with pytest.raises(ValueError):
            score_components([0], lambda c, g: 0.0, iterations=0)
