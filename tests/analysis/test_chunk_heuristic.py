"""Eval-size-aware default chunking of the Monte Carlo runner.

The ROADMAP open item: the serial default used to schedule *all* iterations
as one vectorized chunk, so a 10k-sample MNIST eval set would stack every
realization's working set in one call.  The batch trials now advertise a
``preferred_chunk_size()`` derived from the evaluation-set size, and the
runner honors it whenever no explicit ``chunk_size`` is configured.
"""

import numpy as np

from repro.analysis.monte_carlo import MonteCarloRunner
from repro.execution import MultiprocessBackend, SerialBackend
from repro.onn import SPNNArchitecture
from repro.onn.inference import CHUNK_TARGET_BYTES, NetworkAccuracyBatchTrial, monte_carlo_accuracy
from repro.onn.spnn import SPNN
from repro.variation.models import UncertaintyModel


def _spnn(seed=1, dims=(16, 16, 16, 10)):
    gen = np.random.default_rng(seed)
    arch = SPNNArchitecture(layer_dims=dims)
    weights = [
        (gen.standard_normal(shape) + 1j * gen.standard_normal(shape)) / 4.0
        for shape in arch.weight_shapes()
    ]
    return SPNN(weights, arch)


def _eval_set(spnn, samples, seed=2):
    gen = np.random.default_rng(seed)
    width = spnn.architecture.input_size
    features = gen.standard_normal((samples, width)) + 1j * gen.standard_normal((samples, width))
    labels = gen.integers(0, spnn.architecture.output_size, samples)
    return features, labels


def _trial(spnn, features, labels, sigma=0.02):
    return NetworkAccuracyBatchTrial(
        spnn=spnn, features=features, labels=labels, model=UncertaintyModel.both(sigma)
    )


class TestPreferredChunkSize:
    def test_shrinks_with_eval_set_size(self):
        spnn = _spnn()
        small = _trial(spnn, *_eval_set(spnn, 64))
        large = _trial(spnn, *_eval_set(spnn, 10_000))
        assert large.preferred_chunk_size() < small.preferred_chunk_size()
        assert large.preferred_chunk_size() >= 1

    def test_full_mnist_scale_respects_the_activation_target(self):
        """At the paper's 10k test set one chunk stays near the ~8 MB target."""
        spnn = _spnn()
        features, labels = _eval_set(spnn, 10_000)
        trial = _trial(spnn, features, labels)
        chunk = trial.preferred_chunk_size()
        width = max(spnn.architecture.layer_dims)
        activation_bytes = chunk * features.shape[0] * width * 16
        assert activation_bytes <= CHUNK_TARGET_BYTES

    def test_runner_honors_the_hint_on_the_serial_backend(self):
        spnn = _spnn()
        trial = _trial(spnn, *_eval_set(spnn, 10_000))
        runner = MonteCarloRunner(iterations=1000)
        chunk = runner._effective_chunk_size(SerialBackend(), trial)
        assert chunk == trial.preferred_chunk_size()
        assert chunk < 1000

    def test_explicit_chunk_size_still_wins(self):
        spnn = _spnn()
        trial = _trial(spnn, *_eval_set(spnn, 10_000))
        runner = MonteCarloRunner(iterations=1000, chunk_size=77)
        assert runner._effective_chunk_size(SerialBackend(), trial) == 77

    def test_hint_caps_parallel_chunks_but_never_inflates_them(self):
        spnn = _spnn()
        # Tiny eval set -> huge hint; the two-chunks-per-worker target must
        # still shard the run.
        trial = _trial(spnn, *_eval_set(spnn, 8))
        runner = MonteCarloRunner(iterations=40)
        backend = MultiprocessBackend(workers=4)
        assert runner._effective_chunk_size(backend, trial) == 5
        # Huge eval set -> small hint; it caps the parallel chunk.
        big_trial = _trial(spnn, *_eval_set(spnn, 10_000))
        assert runner._effective_chunk_size(backend, big_trial) == big_trial.preferred_chunk_size()

    def test_scalar_trials_keep_the_old_default(self):
        runner = MonteCarloRunner(iterations=123)
        assert runner._effective_chunk_size(SerialBackend(), trial=None) == 123


class TestRegressionAt10k:
    def test_synthetic_10k_eval_set_matches_explicit_chunking(self):
        """Auto-chunked samples are bit-identical to explicitly chunked ones."""
        spnn = _spnn()
        features, labels = _eval_set(spnn, 10_000)
        model = UncertaintyModel.both(0.02)
        auto = monte_carlo_accuracy(spnn, features, labels, model, iterations=6, rng=9)
        explicit = monte_carlo_accuracy(
            spnn, features, labels, model, iterations=6, rng=9, chunk_size=2
        )
        assert auto.tobytes() == explicit.tobytes()
