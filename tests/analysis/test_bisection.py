"""Bisection refinement of the max tolerable sigma."""

import numpy as np
import pytest

from repro.analysis.yield_analysis import bisect_max_tolerable_sigma
from repro.onn import SPNNArchitecture
from repro.onn.spnn import SPNN
from repro.variation.models import UncertaintyModel


def _spnn_and_eval(seed=3, samples=60):
    gen = np.random.default_rng(seed)
    arch = SPNNArchitecture(layer_dims=(8, 8, 6))
    weights = [
        (gen.standard_normal(shape) + 1j * gen.standard_normal(shape)) / 3.0
        for shape in arch.weight_shapes()
    ]
    spnn = SPNN(weights, arch)
    features = gen.standard_normal((samples, 8)) + 1j * gen.standard_normal((samples, 8))
    labels = np.argmax(spnn.forward_software(features), axis=-1)  # consistent labels
    return spnn, features, labels


class TestBisection:
    def test_refines_between_passing_and_failing_sigma(self):
        spnn, features, labels = _spnn_and_eval()
        nominal = spnn.accuracy(features, labels, use_hardware=True)
        threshold = max(0.0, nominal - 0.1)
        result = bisect_max_tolerable_sigma(
            spnn,
            features,
            labels,
            accuracy_threshold=threshold,
            sigma_hi=0.2,
            sigma_lo=0.0,
            tolerance=0.01,
            iterations=12,
            rng=5,
        )
        # sigma 0 passes by construction (nominal meets the spec) and a
        # 20%-normalized sigma demolishes the accuracy, so the threshold is
        # inside the bracket and got localized to the tolerance.
        assert result.max_tolerable_sigma is not None
        assert result.upper_bound is not None
        assert result.resolution <= 0.01 + 1e-12
        assert 0.0 <= result.max_tolerable_sigma < result.upper_bound <= 0.2
        # O(log) cost: edges + halvings, nowhere near a fine grid.
        assert result.num_probes <= 2 + int(np.ceil(np.log2(0.2 / 0.01))) + 1

    def test_probe_count_is_logarithmic_in_the_resolution(self):
        spnn, features, labels = _spnn_and_eval()
        coarse = bisect_max_tolerable_sigma(
            spnn, features, labels,
            accuracy_threshold=0.5, sigma_hi=0.16, tolerance=0.04, iterations=8, rng=1,
        )
        fine = bisect_max_tolerable_sigma(
            spnn, features, labels,
            accuracy_threshold=0.5, sigma_hi=0.16, tolerance=0.005, iterations=8, rng=1,
        )
        assert fine.num_probes - coarse.num_probes == 3  # three extra halvings

    def test_passing_everywhere_returns_the_upper_edge(self):
        spnn, features, labels = _spnn_and_eval()
        result = bisect_max_tolerable_sigma(
            spnn, features, labels,
            accuracy_threshold=0.0,  # everything meets a zero spec
            sigma_hi=0.05, iterations=6, rng=2,
        )
        assert result.max_tolerable_sigma == 0.05
        assert result.upper_bound is None
        assert result.num_probes == 1

    def test_failing_everywhere_returns_none(self):
        spnn, features, labels = _spnn_and_eval()
        result = bisect_max_tolerable_sigma(
            spnn, features, labels,
            accuracy_threshold=1.0,  # perfection required
            sigma_lo=0.04,  # ... under substantial variation everywhere
            sigma_hi=0.2, iterations=6, rng=2,
        )
        # Even the lower bracket edge misses the spec.
        assert result.max_tolerable_sigma is None
        assert result.upper_bound == 0.04

    def test_deterministic_and_worker_invariant(self):
        spnn, features, labels = _spnn_and_eval()
        kwargs = dict(
            accuracy_threshold=0.5, sigma_hi=0.2, tolerance=0.02, iterations=10, rng=42
        )
        serial = bisect_max_tolerable_sigma(spnn, features, labels, **kwargs)
        again = bisect_max_tolerable_sigma(spnn, features, labels, **kwargs)
        sharded = bisect_max_tolerable_sigma(spnn, features, labels, workers=2, **kwargs)
        assert serial.max_tolerable_sigma == again.max_tolerable_sigma
        assert serial.max_tolerable_sigma == sharded.max_tolerable_sigma
        assert list(serial.probes) == list(sharded.probes)
        for sigma in serial.probes:
            assert serial.probes[sigma].yield_fraction == sharded.probes[sigma].yield_fraction

    def test_power_of_two_bracket_does_not_exhaust_the_streams(self):
        # Regression: when (hi - lo) / tolerance is a power of two, the
        # floating-point halving can need one extra loop probe; the
        # up-front stream budget must cover it.
        spnn, features, labels = _spnn_and_eval()
        result = bisect_max_tolerable_sigma(
            spnn, features, labels,
            accuracy_threshold=0.8,
            sigma_lo=0.01, sigma_hi=0.011, tolerance=5e-4,
            iterations=6, rng=1,
        )
        assert result.resolution is None or result.resolution <= 5e-4 + 1e-12

    def test_validation(self):
        spnn, features, labels = _spnn_and_eval()
        with pytest.raises(ValueError):
            bisect_max_tolerable_sigma(
                spnn, features, labels, accuracy_threshold=0.5, sigma_hi=0.0
            )
        with pytest.raises(ValueError):
            bisect_max_tolerable_sigma(
                spnn, features, labels, accuracy_threshold=0.5, sigma_hi=0.1, tolerance=0.0
            )
        with pytest.raises(ValueError):
            bisect_max_tolerable_sigma(
                spnn, features, labels, accuracy_threshold=2.0, sigma_hi=0.1
            )