"""Tests for the yield-analysis helpers and the end-to-end yield sweep."""

import numpy as np
import pytest

from repro.analysis.yield_analysis import (
    estimate_yield,
    max_tolerable_sigma,
    yield_sweep,
    yield_vs_sigma,
)


def test_estimate_yield_basic_fraction():
    estimate = estimate_yield([0.9, 0.8, 0.4, 0.95], accuracy_threshold=0.75)
    assert estimate.yield_fraction == pytest.approx(0.75)
    assert estimate.mean_accuracy == pytest.approx(np.mean([0.9, 0.8, 0.4, 0.95]))
    assert estimate.samples == 4


def test_estimate_yield_all_or_nothing():
    assert estimate_yield([0.9, 0.95], 0.5).yield_fraction == 1.0
    assert estimate_yield([0.1, 0.2], 0.5).yield_fraction == 0.0


def test_estimate_yield_threshold_inclusive():
    assert estimate_yield([0.8], 0.8).yield_fraction == 1.0


def test_estimate_yield_standard_error():
    estimate = estimate_yield([1.0, 0.0, 1.0, 0.0], 0.5)
    assert estimate.standard_error == pytest.approx(np.sqrt(0.5 * 0.5 / 4))
    single = estimate_yield([1.0], 0.5)
    assert single.standard_error == float("inf")


def test_estimate_yield_validation():
    with pytest.raises(ValueError):
        estimate_yield([], 0.5)
    with pytest.raises(ValueError):
        estimate_yield([0.5], 1.5)
    with pytest.raises(ValueError):
        estimate_yield(np.zeros((2, 2)), 0.5)


def test_yield_vs_sigma_monotone_example():
    sweep = {
        0.0: [0.95, 0.96, 0.97],
        0.05: [0.9, 0.4, 0.5],
        0.1: [0.1, 0.12, 0.11],
    }
    estimates = yield_vs_sigma(sweep, accuracy_threshold=0.8)
    assert estimates[0.0].yield_fraction == 1.0
    assert estimates[0.05].yield_fraction == pytest.approx(1 / 3)
    assert estimates[0.1].yield_fraction == 0.0


def test_max_tolerable_sigma():
    sweep = {
        0.0: [0.95, 0.96],
        0.025: [0.9, 0.92],
        0.05: [0.5, 0.85],
        0.1: [0.1, 0.2],
    }
    assert max_tolerable_sigma(sweep, accuracy_threshold=0.8, target_yield=0.9) == 0.025
    assert max_tolerable_sigma(sweep, accuracy_threshold=0.8, target_yield=0.4) == 0.05
    assert max_tolerable_sigma(sweep, accuracy_threshold=0.99, target_yield=0.9) is None
    with pytest.raises(ValueError):
        max_tolerable_sigma(sweep, 0.8, target_yield=0.0)


class TestYieldSweep:
    @pytest.fixture(scope="class")
    def sweep(self, small_task):
        return yield_sweep(
            small_task.spnn,
            small_task.test_features[:80],
            small_task.test_labels[:80],
            sigmas=(0.0, 0.01, 0.1),
            iterations=6,
            rng=3,
        )

    def test_sweep_covers_every_sigma(self, sweep):
        assert sweep.sigmas == (0.0, 0.01, 0.1)
        assert set(sweep.estimates) == {0.0, 0.01, 0.1}
        assert all(samples.shape == (6,) for samples in sweep.accuracy_samples.values())

    def test_zero_sigma_short_circuits_to_nominal(self, sweep):
        assert np.all(sweep.accuracy_samples[0.0] == sweep.nominal_accuracy)
        assert sweep.estimates[0.0].yield_fraction == 1.0

    def test_yield_degrades_with_sigma(self, sweep):
        curve = sweep.yield_curve()
        assert curve[0] >= curve[-1]
        assert sweep.estimates[0.1].mean_accuracy <= sweep.nominal_accuracy

    def test_default_threshold_tracks_nominal(self, sweep):
        assert sweep.accuracy_threshold == pytest.approx(
            max(0.0, sweep.nominal_accuracy - 0.05)
        )

    def test_max_tolerable_sigma_consistent_with_helper(self, sweep):
        expected = max_tolerable_sigma(
            sweep.accuracy_samples, sweep.accuracy_threshold, sweep.target_yield
        )
        assert sweep.max_tolerable_sigma == expected

    def test_report_mentions_spec_and_verdict(self, sweep):
        report = sweep.report()
        assert "Yield sweep" in report
        assert "max tolerable sigma" in report
        assert "MC iterations" in report

    def test_worker_sharding_bit_identical(self, small_task):
        kwargs = dict(sigmas=(0.05,), iterations=6, rng=9)
        features, labels = small_task.test_features[:40], small_task.test_labels[:40]
        serial = yield_sweep(small_task.spnn, features, labels, **kwargs)
        sharded = yield_sweep(small_task.spnn, features, labels, workers=2, **kwargs)
        assert np.array_equal(
            serial.accuracy_samples[0.05], sharded.accuracy_samples[0.05]
        )

    def test_folded_bit_identical_to_per_sigma_loop(self, small_task):
        """The single folded device pass IS the per-sigma loop, bit for bit."""
        kwargs = dict(sigmas=(0.0, 0.02, 0.05), iterations=6, rng=13)
        features, labels = small_task.test_features[:40], small_task.test_labels[:40]
        folded = yield_sweep(small_task.spnn, features, labels, **kwargs)
        per_sigma = yield_sweep(
            small_task.spnn, features, labels, fold_sigmas=False, **kwargs
        )
        for sigma in kwargs["sigmas"]:
            assert np.array_equal(
                folded.accuracy_samples[sigma], per_sigma.accuracy_samples[sigma]
            )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_folded_bit_identical_at_every_worker_count(self, small_task, workers):
        """Sigma folding shards over one long batch; workers never change it."""
        kwargs = dict(sigmas=(0.0, 0.02, 0.05), iterations=6, rng=13)
        features, labels = small_task.test_features[:40], small_task.test_labels[:40]
        serial = yield_sweep(small_task.spnn, features, labels, **kwargs)
        sharded = yield_sweep(
            small_task.spnn, features, labels, workers=workers, **kwargs
        )
        for sigma in kwargs["sigmas"]:
            assert np.array_equal(
                serial.accuracy_samples[sigma], sharded.accuracy_samples[sigma]
            )

    @pytest.mark.parametrize("workers", [None, 2])
    def test_workspace_aliasing_safe_under_workers(self, small_task, workers):
        """Shared per-process workspace buffers never leak between chunks.

        With ``use_workspace=True`` every chunk of every sigma reuses the
        same process-level scratch allocations — in the parent when serial,
        inside each pool worker when sharded.  Any aliasing bug (a chunk
        reading another chunk's leftovers) would break bit-identity with
        the workspace-free run.
        """
        kwargs = dict(sigmas=(0.0, 0.02, 0.05), iterations=6, rng=13)
        features, labels = small_task.test_features[:40], small_task.test_labels[:40]
        plain = yield_sweep(small_task.spnn, features, labels, workers=workers, **kwargs)
        recycled = yield_sweep(
            small_task.spnn, features, labels, workers=workers, use_workspace=True, **kwargs
        )
        for sigma in kwargs["sigmas"]:
            assert np.array_equal(
                plain.accuracy_samples[sigma], recycled.accuracy_samples[sigma]
            )

    def test_folded_chunks_crossing_sigma_boundaries(self, small_task):
        """A chunk size coprime to the per-sigma block changes nothing."""
        kwargs = dict(sigmas=(0.02, 0.05), iterations=6, rng=17, case="phs")
        features, labels = small_task.test_features[:40], small_task.test_labels[:40]
        reference = yield_sweep(small_task.spnn, features, labels, **kwargs)
        chunked = yield_sweep(
            small_task.spnn, features, labels, chunk_size=5, **kwargs
        )
        for sigma in kwargs["sigmas"]:
            assert np.array_equal(
                reference.accuracy_samples[sigma], chunked.accuracy_samples[sigma]
            )

    def test_validation(self, small_task):
        features, labels = small_task.test_features[:10], small_task.test_labels[:10]
        with pytest.raises(ValueError):
            yield_sweep(small_task.spnn, features, labels, sigmas=())
        with pytest.raises(ValueError):
            yield_sweep(small_task.spnn, features, labels, sigmas=(-0.1,))
        with pytest.raises(ValueError):
            yield_sweep(small_task.spnn, features, labels, sigmas=(0.05,), iterations=0)
        with pytest.raises(ValueError):
            yield_sweep(
                small_task.spnn, features, labels, sigmas=(0.05,), iterations=2, case="nope"
            )
        with pytest.raises(ValueError):
            yield_sweep(
                small_task.spnn, features, labels, sigmas=(0.05,), iterations=2,
                target_yield=0.0,
            )


def test_yield_from_exp1_style_samples(small_task):
    """End-to-end: yield of the trained SPNN at a mild vs severe sigma."""
    from repro.onn import monte_carlo_accuracy
    from repro.variation import UncertaintyModel

    features, labels = small_task.test_features[:80], small_task.test_labels[:80]
    mild = monte_carlo_accuracy(small_task.spnn, features, labels, UncertaintyModel.both(0.005), iterations=5, rng=0)
    severe = monte_carlo_accuracy(small_task.spnn, features, labels, UncertaintyModel.both(0.1), iterations=5, rng=0)
    threshold = small_task.baseline_accuracy - 0.25
    mild_yield = estimate_yield(mild, threshold).yield_fraction
    severe_yield = estimate_yield(severe, threshold).yield_fraction
    assert mild_yield >= severe_yield
    assert severe_yield <= 0.5
