"""Timeline sweep + recalibration policies: invariance and edge cases."""

import numpy as np
import pytest

from repro.analysis.recalibration import (
    RecalibrationPolicy,
    RenullCost,
    measure_renull_cost,
    renull_network,
)
from repro.analysis.timeline import timeline_sweep, timeline_sweep_multi
from repro.utils.rng import spawn_rngs
from repro.variation.models import UncertaintyModel
from repro.variation.process import (
    IIDGaussianProcess,
    OrnsteinUhlenbeckProcess,
    RandomWalkProcess,
    build_process,
)


def _sweep(small_task, **overrides):
    kwargs = dict(
        model=UncertaintyModel.phase_only(0.08),
        process=OrnsteinUhlenbeckProcess(correlation_time=4.0),
        num_steps=5,
        timelines=12,
        rng=5,
    )
    kwargs.update(overrides)
    return timeline_sweep(
        small_task.spnn, small_task.test_features, small_task.test_labels, **kwargs
    )


class TestWorkerInvariance:
    @pytest.fixture(scope="class")
    def serial(self, small_task):
        policy = RecalibrationPolicy(every=3, drift_threshold=0.9)
        return _sweep(small_task, policy=policy)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_bit_identical_to_serial(self, small_task, serial, workers):
        policy = RecalibrationPolicy(every=3, drift_threshold=0.9)
        sharded = _sweep(small_task, policy=policy, workers=workers)
        np.testing.assert_array_equal(sharded.accuracy, serial.accuracy)
        np.testing.assert_array_equal(sharded.recalibrations, serial.recalibrations)

    def test_chunk_size_bit_identical_to_serial(self, small_task, serial):
        policy = RecalibrationPolicy(every=3, drift_threshold=0.9)
        chunked = _sweep(small_task, policy=policy, chunk_size=5)
        np.testing.assert_array_equal(chunked.accuracy, serial.accuracy)
        np.testing.assert_array_equal(chunked.recalibrations, serial.recalibrations)


class TestPolicyEdgeCases:
    def test_null_policy_matches_no_policy(self, small_task):
        """An all-disarmed policy is exactly the no-maintenance baseline."""
        baseline = _sweep(small_task, policy=None)
        null_policy = _sweep(small_task, policy=RecalibrationPolicy())
        assert RecalibrationPolicy().is_null
        np.testing.assert_array_equal(null_policy.accuracy, baseline.accuracy)
        assert baseline.total_recalibrations == 0
        assert null_policy.total_recalibrations == 0

    def test_never_triggered_threshold_matches_baseline(self, small_task):
        """A drift threshold nothing reaches must not change a single draw."""
        baseline = _sweep(small_task, policy=None)
        unreachable = _sweep(
            small_task, policy=RecalibrationPolicy(drift_threshold=1e6)
        )
        np.testing.assert_array_equal(unreachable.accuracy, baseline.accuracy)
        assert unreachable.total_recalibrations == 0

    def test_every_step_renull_serves_nominal_accuracy(self, small_task):
        """Re-nulling every step under phase-only drift restores nominal.

        ``every=1`` fires at step 0 too (the fabrication-draw re-null), so
        every tunable phase is compensated before every serve and the
        device serves its drift-free accuracy at every single step.
        """
        result = _sweep(
            small_task,
            policy=RecalibrationPolicy(every=1),
            process=RandomWalkProcess(step_scale=0.5),
        )
        assert result.recalibrations.all()
        np.testing.assert_allclose(
            result.accuracy, result.nominal_accuracy, atol=1e-12
        )

    def test_accuracy_trigger_lags_one_step(self, small_task):
        """Reactive maintenance reacts to *served* traffic: step 0 never fires."""
        result = _sweep(
            small_task,
            policy=RecalibrationPolicy(accuracy_threshold=1.0),
            process=RandomWalkProcess(step_scale=0.5),
        )
        assert not result.recalibrations[:, 0].any()
        # Served accuracy stays below 100%, so every later step re-nulls.
        assert (result.accuracy < 1.0).all()
        assert result.recalibrations[:, 1:].all()

    def test_recalibration_recovers_served_accuracy(self, small_task):
        """Scheduled re-nulling beats the no-maintenance baseline under aging."""
        process = RandomWalkProcess(step_scale=0.6)
        baseline = _sweep(small_task, process=process, num_steps=8)
        recal = _sweep(
            small_task,
            process=process,
            num_steps=8,
            policy=RecalibrationPolicy(every=2),
        )
        assert recal.mean_served_accuracy > baseline.mean_served_accuracy
        assert recal.total_recalibrations == 4 * recal.timelines


class TestValidation:
    def test_sweep_rejects_bad_arguments(self, small_task):
        for bad in (
            dict(num_steps=0),
            dict(timelines=0),
            dict(chunk_size=0),
        ):
            with pytest.raises(ValueError):
                _sweep(small_task, **bad)

    def test_policy_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            RecalibrationPolicy(every=0)
        with pytest.raises(ValueError):
            RecalibrationPolicy(drift_threshold=0.0)
        with pytest.raises(ValueError):
            RecalibrationPolicy(accuracy_threshold=1.5)

    def test_scheduled_includes_step_zero(self):
        policy = RecalibrationPolicy(every=3)
        assert policy.scheduled(0)
        assert not policy.scheduled(1)
        assert policy.scheduled(3)
        assert not RecalibrationPolicy().scheduled(0)


class TestResultSurface:
    @pytest.fixture(scope="class")
    def result(self, small_task):
        return _sweep(
            small_task,
            process=build_process("walk", step_scale=0.4),
            policy=RecalibrationPolicy(every=2),
        )

    def test_shapes_and_metadata(self, result):
        assert result.accuracy.shape == (12, 5)
        assert result.recalibrations.shape == (12, 5)
        assert result.timelines == 12 and result.num_steps == 5
        assert result.process == "walk"
        assert 0.0 < result.nominal_accuracy <= 1.0

    def test_curves_and_scalars(self, result):
        curve = result.served_accuracy_curve()
        assert curve.shape == (5,)
        assert result.mean_served_accuracy == pytest.approx(float(curve.mean()))
        assert result.final_step_accuracy == pytest.approx(float(curve[-1]))
        recal_curve = result.recalibration_curve()
        # every=2 over 5 steps: steps 0, 2, 4 re-null the whole fleet.
        np.testing.assert_allclose(recal_curve, [1.0, 0.0, 1.0, 0.0, 1.0])
        assert result.recalibrations_per_timeline == pytest.approx(3.0)

    def test_report_smoke(self, result):
        report = result.report()
        assert "12 device timelines" in report
        assert "'walk'" in report
        assert "recalibrations per timeline" in report


class TestRenullMachinery:
    def test_renull_network_restores_weights(self, small_task):
        layers, report = renull_network(small_task.spnn.photonic_layers)
        assert report.layers == len(layers) == len(small_task.spnn.photonic_layers)
        assert report.warm_retunes + report.exact_recompiles == report.layers
        for layer in layers:
            np.testing.assert_allclose(layer.matrix(), layer.weight, atol=1e-6)

    def test_measure_renull_cost(self, small_task):
        cost = measure_renull_cost(small_task.spnn.photonic_layers, repeats=1)
        assert isinstance(cost, RenullCost)
        assert cost.warm_seconds > 0 and cost.exact_seconds > 0
        assert cost.layers == len(small_task.spnn.photonic_layers)
        assert "warm re-null" in cost.report()
        with pytest.raises(ValueError):
            measure_renull_cost(small_task.spnn.photonic_layers, repeats=0)


class TestMultiModelSweep:
    MODELS = (
        UncertaintyModel.phase_only(0.04),
        UncertaintyModel.phase_only(0.08),
        UncertaintyModel.both(0.05),
    )

    def _multi(self, small_task, **overrides):
        kwargs = dict(
            models=self.MODELS,
            process=RandomWalkProcess(),
            num_steps=4,
            timelines=8,
            rng=11,
        )
        kwargs.update(overrides)
        return timeline_sweep_multi(
            small_task.spnn, small_task.test_features, small_task.test_labels, **kwargs
        )

    def test_bit_identical_to_sequential_sweeps(self, small_task):
        """Model i of the folded pass IS timeline_sweep on child stream i."""
        results = self._multi(small_task)
        streams = spawn_rngs(11, len(self.MODELS))
        for model, stream, result in zip(self.MODELS, streams, results):
            single = timeline_sweep(
                small_task.spnn,
                small_task.test_features,
                small_task.test_labels,
                model=model,
                process=RandomWalkProcess(),
                num_steps=4,
                timelines=8,
                rng=stream,
            )
            np.testing.assert_array_equal(result.accuracy, single.accuracy)
            np.testing.assert_array_equal(result.recalibrations, single.recalibrations)

    def test_workers_bit_identical_to_serial(self, small_task):
        policy = RecalibrationPolicy(every=2)
        serial = self._multi(small_task, policy=policy)
        sharded = self._multi(small_task, policy=policy, workers=2)
        for a, b in zip(serial, sharded):
            np.testing.assert_array_equal(a.accuracy, b.accuracy)
            np.testing.assert_array_equal(a.recalibrations, b.recalibrations)

    def test_requires_models(self, small_task):
        with pytest.raises(ValueError):
            self._multi(small_task, models=())


class TestProcessDefaultsThroughSweep:
    def test_iid_process_gives_independent_steps(self, small_task):
        """The i.i.d. process redraws per step: step 0 equals a fresh draw
        of the legacy static Monte Carlo on the same streams (covered in
        depth by tests/variation/test_processes.py); here just check the
        sweep runs it end to end with sane output."""
        result = _sweep(small_task, process=IIDGaussianProcess(), num_steps=2)
        assert result.process == "iid"
        assert np.isfinite(result.accuracy).all()
        assert (result.accuracy >= 0.0).all() and (result.accuracy <= 1.0).all()
