"""Tests for the RVD figure of merit and Monte Carlo statistics."""

import numpy as np
import pytest

from repro.analysis import (
    confidence_interval,
    margin_of_error,
    mean_rvd,
    normalized_rvd,
    required_iterations,
    rvd,
    rvd_batch,
    rvd_matrix,
    summarize,
    worst_case_margin_of_error,
)
from repro.exceptions import ShapeError
from repro.utils import random_unitary


class TestRVD:
    def test_zero_for_identical_matrices(self):
        u = random_unitary(5, rng=0)
        assert rvd(u, u) == 0.0

    def test_positive_for_different_matrices(self):
        a, b = random_unitary(4, rng=1), random_unitary(4, rng=2)
        assert rvd(a, b) > 0.0

    def test_manual_example(self):
        reference = np.array([[1.0, 2.0], [4.0, 5.0]], dtype=complex)
        actual = reference + np.array([[0.1, 0.2], [0.4, 0.5]])
        # every element deviates by 10% of its magnitude -> RVD = 4 * 0.1
        assert rvd(actual, reference) == pytest.approx(0.4)

    def test_scales_linearly_with_small_deviation(self):
        reference = random_unitary(4, rng=3)
        delta = 1e-3 * random_unitary(4, rng=4)
        small = rvd(reference + delta, reference)
        large = rvd(reference + 2 * delta, reference)
        assert large == pytest.approx(2 * small, rel=1e-9)

    def test_zero_reference_element_raises_without_eps(self):
        reference = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=complex)
        with pytest.raises(ZeroDivisionError):
            rvd(reference + 0.1, reference)
        assert np.isfinite(rvd(reference + 0.1, reference, eps=1e-9))

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            rvd(np.eye(2), np.eye(3))

    def test_rvd_matrix_elementwise(self):
        reference = np.full((2, 2), 2.0, dtype=complex)
        actual = reference + 0.2
        assert np.allclose(rvd_matrix(actual, reference), 0.1)

    def test_mean_rvd(self):
        reference = random_unitary(3, rng=5)
        actuals = [reference, reference]
        assert mean_rvd(actuals, reference) == 0.0
        with pytest.raises(ValueError):
            mean_rvd([], reference)

    def test_normalized_rvd(self):
        reference = np.full((2, 2), 1.0, dtype=complex)
        actual = reference + 0.1
        assert normalized_rvd(actual, reference) == pytest.approx(0.1)

    def test_negative_eps_rejected_everywhere(self):
        """Regression: rvd validated eps < 0 but rvd_matrix did not."""
        reference = random_unitary(3, rng=6)
        with pytest.raises(ValueError):
            rvd(reference, reference, eps=-1e-3)
        with pytest.raises(ValueError):
            rvd_matrix(reference, reference, eps=-1e-3)
        with pytest.raises(ValueError):
            normalized_rvd(reference, reference, eps=-1e-3)
        with pytest.raises(ValueError):
            rvd_batch(reference[np.newaxis], reference, eps=-1e-3)

    def test_normalized_rvd_rejects_empty_reference(self):
        empty = np.zeros((0, 0), dtype=complex)
        with pytest.raises(ShapeError):
            normalized_rvd(empty, empty)

    def test_rvd_batch_matches_looped_rvd(self):
        reference = random_unitary(4, rng=7)
        rng = np.random.default_rng(8)
        actuals = reference + 0.01 * (
            rng.normal(size=(6, 4, 4)) + 1j * rng.normal(size=(6, 4, 4))
        )
        batched = rvd_batch(actuals, reference)
        looped = np.array([rvd(actual, reference) for actual in actuals])
        assert np.array_equal(batched, looped)

    def test_rvd_batch_validation(self):
        reference = random_unitary(3, rng=9)
        with pytest.raises(ShapeError):
            rvd_batch(reference, reference)  # missing batch axis
        zero_ref = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=complex)
        with pytest.raises(ZeroDivisionError):
            rvd_batch(zero_ref[np.newaxis] + 0.1, zero_ref)


class TestStatistics:
    def test_margin_of_error_decreases_with_samples(self):
        gen = np.random.default_rng(0)
        small = margin_of_error(gen.normal(0, 1, 50))
        large = margin_of_error(gen.normal(0, 1, 5000))
        assert large < small

    def test_margin_of_error_single_sample_infinite(self):
        assert margin_of_error([1.0]) == float("inf")

    def test_margin_of_error_validation(self):
        with pytest.raises(ValueError):
            margin_of_error([])
        with pytest.raises(ValueError):
            margin_of_error([1.0, 2.0], confidence=1.5)

    def test_worst_case_margin_matches_paper_scale(self):
        """1000 iterations -> worst-case 95% margin ~3.1%, i.e. a ~6.2%-wide interval.

        This is the paper's justification for using 1000 Monte Carlo
        iterations (maximum margin of error 6.27%).
        """
        moe = worst_case_margin_of_error(1000)
        assert moe == pytest.approx(0.031, abs=0.002)
        assert 2 * moe * 100 == pytest.approx(6.27, abs=0.3)

    def test_required_iterations_roundtrip(self):
        iterations = required_iterations(0.031)
        assert 900 <= iterations <= 1100

    def test_confidence_interval_contains_mean(self):
        samples = np.random.default_rng(1).normal(5.0, 1.0, 500)
        low, high = confidence_interval(samples)
        assert low < samples.mean() < high

    def test_summarize_fields(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        summary = summarize(samples)
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.count == 4
        low, high = summary.confidence_interval
        assert low < summary.mean < high

    def test_summarize_validation(self):
        with pytest.raises(ValueError):
            summarize(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            required_iterations(0.0)
