"""End-to-end tracing through the analysis sweeps on a real trained SPNN.

The ISSUE invariants, asserted against the engine's actual hot seams:
traced runs are bit-identical to untraced runs, the merged chunk frames
reconstruct exactly the schedule the engine planned, and kernel-dispatch
records name real registry kernels.
"""

import numpy as np
import pytest

from repro.analysis.yield_analysis import yield_sweep
from repro.observability import MetricsReport, observe
from repro.variation import UncertaintyModel


def _yield_kwargs():
    return dict(sigmas=(0.0, 0.02, 0.05), iterations=6, rng=13)


class TestYieldSweepTracing:
    @pytest.fixture(scope="class")
    def traced(self, small_task):
        features = small_task.test_features[:40]
        labels = small_task.test_labels[:40]
        untraced = yield_sweep(small_task.spnn, features, labels, **_yield_kwargs())
        with observe() as rec:
            traced = yield_sweep(small_task.spnn, features, labels, **_yield_kwargs())
        return untraced, traced, rec

    def test_traced_run_is_bit_identical(self, traced):
        untraced, sweep, _ = traced
        for sigma in _yield_kwargs()["sigmas"]:
            assert np.array_equal(
                untraced.accuracy_samples[sigma], sweep.accuracy_samples[sigma]
            )

    def test_sweep_span_is_recorded_with_attrs(self, traced):
        _, _, rec = traced
        (span,) = [s for s in rec.spans if s.name == "yield/sweep"]
        assert span.attrs["sigmas"] == 3
        assert span.attrs["iterations"] == 6
        assert span.seconds > 0.0

    def test_folded_mc_span_nests_under_the_sweep(self, traced):
        _, _, rec = traced
        sweep_span = next(s for s in rec.spans if s.name == "yield/sweep")
        folded = [s for s in rec.spans if s.name == "yield/folded_mc"]
        assert folded, "the folded device pass must be spanned"
        assert all(s.parent_id == sweep_span.span_id for s in folded)

    def test_hosting_spans_account_shared_bytes(self, small_task):
        """Shared-memory hosting (parallel backends only) is spanned."""
        features = small_task.test_features[:40]
        labels = small_task.test_labels[:40]
        with observe() as rec:
            yield_sweep(
                small_task.spnn, features, labels, workers=2, **_yield_kwargs()
            )
        names = {s.name for s in rec.spans}
        assert "shared/host_network" in names
        assert "shared/host_arrays" in names
        host = next(s for s in rec.spans if s.name == "shared/host_network")
        assert host.attrs["bytes"] > 0
        arrays = next(s for s in rec.spans if s.name == "shared/host_arrays")
        assert arrays.attrs["segments"] >= 1

    def test_frames_cover_the_folded_batch(self, traced):
        _, _, rec = traced
        frames = [f for f in rec.frames if f.label == "yield"]
        assert frames, "folded chunks must produce frames"
        # The folded pass evaluates sigmas x iterations rows minus the
        # sigma=0 short-circuit (2 non-zero sigmas x 6 iterations here).
        assert sum(f.count for f in frames) == 12
        assert [f.start for f in frames] == sorted(f.start for f in frames)

    def test_dispatches_name_registry_kernels(self, traced):
        from repro.arrays.sweep import sweep_kernel_names

        _, _, rec = traced
        report = MetricsReport.from_recorder(rec)
        assert report.kernels, "mesh forwards must record column-sweep dispatches"
        known = set(sweep_kernel_names())
        for entry in report.kernels:
            assert entry["kernel"] in known
            assert entry["calls"] >= 1
            # The (16, 16, 16, 10) test SPNN compiles 16x16 and 10x10 meshes.
            assert entry["n"] in (10, 16)

    def test_chunk_schedule_reconstructs_the_plan(self, small_task):
        """The CI trace-smoke assertion, in miniature: frames == plan.

        The folded pass tiles its rows (non-zero sigmas x iterations) into
        contiguous equal chunks; the merged frames must reproduce exactly
        that plan — same chunk size throughout, contiguous, in order,
        covering every row once.
        """
        rows = 12  # 2 non-zero sigmas x 6 iterations, folded
        features = small_task.test_features[:40]
        labels = small_task.test_labels[:40]
        with observe() as rec:
            yield_sweep(
                small_task.spnn, features, labels, workers=2, **_yield_kwargs()
            )
        schedule = MetricsReport.from_recorder(rec).chunk_schedule(label="yield")
        assert schedule, "the folded pass must leave chunk frames"
        chunk = schedule[0][1]
        expected = [
            (start, min(chunk, rows - start)) for start in range(0, rows, chunk)
        ]
        assert schedule == expected
        # And the observed chunk size is the planner's, not an accident.
        folded_span = next(s for s in rec.spans if s.name == "yield/folded_mc")
        assert folded_span.attrs["chunk_size"] == chunk
        assert folded_span.attrs["chunks"] == len(schedule)

    def test_traced_sharded_run_matches_serial(self, small_task):
        features = small_task.test_features[:40]
        labels = small_task.test_labels[:40]
        serial = yield_sweep(small_task.spnn, features, labels, **_yield_kwargs())
        with observe():
            sharded = yield_sweep(
                small_task.spnn, features, labels, workers=2, **_yield_kwargs()
            )
        for sigma in _yield_kwargs()["sigmas"]:
            assert np.array_equal(
                serial.accuracy_samples[sigma], sharded.accuracy_samples[sigma]
            )


class TestTimelineTracing:
    def _sweep(self, small_task):
        from repro.variation.process import OrnsteinUhlenbeckProcess

        return dict(
            model=UncertaintyModel.phase_only(0.08),
            process=OrnsteinUhlenbeckProcess(correlation_time=4.0),
            num_steps=3,
            timelines=6,
            rng=5,
        )

    def test_traced_timeline_sweep_is_bit_identical(self, small_task):
        from repro.analysis.timeline import timeline_sweep

        kwargs = self._sweep(small_task)
        features = small_task.test_features[:40]
        labels = small_task.test_labels[:40]
        untraced = timeline_sweep(small_task.spnn, features, labels, **kwargs)
        with observe() as rec:
            traced = timeline_sweep(small_task.spnn, features, labels, **kwargs)
        np.testing.assert_array_equal(untraced.accuracy, traced.accuracy)
        np.testing.assert_array_equal(untraced.recalibrations, traced.recalibrations)
        (span,) = [s for s in rec.spans if s.name == "timeline/sweep"]
        assert span.attrs["timelines"] == 6
        assert span.attrs["steps"] == 3
        assert [f.label for f in rec.frames].count("timeline") == len(rec.frames)


class TestTrainingTracing:
    def test_noise_step_spans_record_draws(self):
        from repro.nn.activations import LogSoftmax, Modulus
        from repro.nn.layers import ComplexLinear
        from repro.nn.losses import CrossEntropyLoss
        from repro.nn.module import Sequential
        from repro.nn.optim import Adam
        from repro.nn.trainer import TrainerConfig
        from repro.training.injector import NoiseInjector
        from repro.training.noise_aware import NoiseAwareTrainer

        rng = np.random.default_rng(1)
        features = rng.standard_normal((32, 4))
        targets = rng.integers(0, 3, size=32)

        def build():
            model = Sequential(ComplexLinear(4, 3, rng=2), Modulus(), LogSoftmax())
            return model, NoiseAwareTrainer(
                model,
                Adam(model.parameters(), lr=0.01),
                NoiseInjector(UncertaintyModel.both(0.01), draws=2, recompile_every=2, rng=3),
                loss_fn=CrossEntropyLoss(from_log_probs=True),
                config=TrainerConfig(epochs=2, batch_size=16),
                rng=0,
            )

        model_a, trainer_a = build()
        trainer_a.fit(features, targets)
        model_b, trainer_b = build()
        with observe() as rec:
            trainer_b.fit(features, targets)

        # Bit-identity: tracing must not perturb the training trajectory.
        state_a, state_b = model_a.state_dict(), model_b.state_dict()
        for key in state_a:
            assert np.array_equal(state_a[key], state_b[key])

        steps = [s for s in rec.spans if s.name == "train/noise_step"]
        assert len(steps) == 4  # 2 epochs x 2 minibatches
        assert all(s.attrs["draws"] == 2 for s in steps)
        assert all(s.attrs["batch"] == 16 for s in steps)
        assert {s.attrs["epoch"] for s in steps} == {0, 1}
