"""Progress heartbeats: sinks, backend chunk records, trainer epoch routing."""

import numpy as np
import pytest

from repro.execution.backends import MultiprocessBackend, SerialBackend
from repro.observability.progress import (
    PrintProgressSink,
    ProgressSink,
    emit_epoch,
    emit_progress,
    progress_sink,
    set_progress_sink,
    use_progress_sink,
)


class RecordingSink(ProgressSink):
    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(record)


def _double(value):
    return value * 2


class TestSinkManagement:
    def test_no_sink_by_default(self):
        assert progress_sink() is None

    def test_use_progress_sink_installs_and_restores(self):
        sink = RecordingSink()
        with use_progress_sink(sink) as installed:
            assert installed is sink
            assert progress_sink() is sink
        assert progress_sink() is None

    def test_set_progress_sink_process_wide(self):
        sink = RecordingSink()
        set_progress_sink(sink)
        try:
            assert progress_sink() is sink
        finally:
            set_progress_sink(None)
        assert progress_sink() is None

    def test_emit_progress_without_sink_is_silent(self, capsys):
        emit_progress("chunk", done=1, total=2)
        assert capsys.readouterr().out == ""

    def test_emit_progress_builds_record(self):
        sink = RecordingSink()
        with use_progress_sink(sink):
            emit_progress("chunk", label="mc", done=1, total=4, seconds=0.5)
        assert sink.records == [
            {"kind": "chunk", "label": "mc", "done": 1, "total": 4, "seconds": 0.5}
        ]


class TestEmitEpoch:
    def test_without_sink_prints_message_verbatim(self, capsys):
        """The trainer's historical log line is byte-identical without a sink."""
        emit_epoch("epoch   3: train loss 0.1234, train acc 0.900", epoch=3)
        assert capsys.readouterr().out == "epoch   3: train loss 0.1234, train acc 0.900\n"

    def test_with_sink_routes_structured_record_and_prints_nothing(self, capsys):
        sink = RecordingSink()
        with use_progress_sink(sink):
            emit_epoch("epoch 1: ...", epoch=1, train_loss=0.5)
        assert capsys.readouterr().out == ""
        (record,) = sink.records
        assert record["kind"] == "epoch"
        assert record["message"] == "epoch 1: ..."
        assert record["train_loss"] == 0.5


class TestPrintProgressSink:
    def test_chunk_record_renders_one_line(self, capsys):
        PrintProgressSink().emit(
            {"kind": "chunk", "label": "yield", "done": 2, "total": 8, "seconds": 1.234}
        )
        assert capsys.readouterr().out == "[progress] yield: chunk 2/8 done (1.23s elapsed)\n"

    def test_epoch_record_renders_message(self, capsys):
        PrintProgressSink().emit({"kind": "epoch", "message": "epoch 1: loss 0.5"})
        assert capsys.readouterr().out == "[progress] epoch 1: loss 0.5\n"

    def test_unknown_record_renders_sorted_fields(self, capsys):
        PrintProgressSink().emit({"kind": "custom", "b": 2, "a": 1})
        assert capsys.readouterr().out == "[progress] custom a=1 b=2\n"


class TestBackendHeartbeats:
    def test_serial_backend_emits_one_record_per_task(self):
        sink = RecordingSink()
        with use_progress_sink(sink):
            results = SerialBackend().map(_double, [1, 2, 3])
        assert results == [2, 4, 6]
        assert [record["done"] for record in sink.records] == [1, 2, 3]
        assert all(record["kind"] == "chunk" for record in sink.records)
        assert all(record["total"] == 3 for record in sink.records)
        assert all(record["label"] == "serial" for record in sink.records)

    def test_serial_backend_silent_without_sink(self, capsys):
        assert SerialBackend().map(_double, [1, 2]) == [2, 4]
        assert capsys.readouterr().out == ""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_multiprocess_backend_emits_heartbeats(self, workers):
        sink = RecordingSink()
        with use_progress_sink(sink):
            results = MultiprocessBackend(workers=workers).map(_double, [1, 2, 3, 4])
        assert results == [2, 4, 6, 8]
        assert [record["done"] for record in sink.records] == [1, 2, 3, 4]
        assert all(record["label"] == "multiprocess" for record in sink.records)

    def test_persistent_pool_emits_heartbeats(self):
        sink = RecordingSink()
        with MultiprocessBackend(workers=2) as backend:
            with use_progress_sink(sink):
                results = backend.map(_double, [5, 6])
        assert results == [10, 12]
        assert [record["done"] for record in sink.records] == [1, 2]

    def test_heartbeats_do_not_change_results(self):
        sink = RecordingSink()
        plain = SerialBackend().map(_double, list(range(10)))
        with use_progress_sink(sink):
            sunk = SerialBackend().map(_double, list(range(10)))
        assert plain == sunk


class TestTrainerEpochRouting:
    def _fit(self, log_every):
        from repro.nn.activations import LogSoftmax, Modulus
        from repro.nn.layers import ComplexLinear
        from repro.nn.module import Sequential
        from repro.nn.optim import SGD
        from repro.nn.trainer import Trainer, TrainerConfig

        rng = np.random.default_rng(0)
        features = rng.standard_normal((32, 4))
        targets = rng.integers(0, 3, size=32)
        model = Sequential(ComplexLinear(4, 3, rng=1), Modulus(), LogSoftmax())
        trainer = Trainer(
            model,
            SGD(model.parameters(), lr=0.01),
            config=TrainerConfig(epochs=2, batch_size=16, log_every=log_every),
            rng=0,
        )
        trainer.fit(features, targets)

    def test_default_logging_prints_legacy_lines(self, capsys):
        self._fit(log_every=1)
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("epoch   1: train loss ")
        assert ", train acc " in lines[0]

    def test_sink_receives_structured_epoch_records(self, capsys):
        sink = RecordingSink()
        with use_progress_sink(sink):
            self._fit(log_every=1)
        assert capsys.readouterr().out == ""
        assert [record["epoch"] for record in sink.records] == [1, 2]
        for record in sink.records:
            assert record["kind"] == "epoch"
            assert isinstance(record["train_loss"], float)
            assert isinstance(record["train_acc"], float)
            assert record["val_loss"] is None

    def test_noise_aware_trainer_reports_progress_extra(self):
        from repro.nn.activations import LogSoftmax, Modulus
        from repro.nn.layers import ComplexLinear
        from repro.nn.losses import CrossEntropyLoss
        from repro.nn.module import Sequential
        from repro.nn.optim import Adam
        from repro.nn.trainer import TrainerConfig
        from repro.training.injector import NoiseInjector
        from repro.training.noise_aware import NoiseAwareTrainer
        from repro.variation import UncertaintyModel

        rng = np.random.default_rng(1)
        features = rng.standard_normal((32, 4))
        targets = rng.integers(0, 3, size=32)
        model = Sequential(ComplexLinear(4, 3, rng=2), Modulus(), LogSoftmax())
        trainer = NoiseAwareTrainer(
            model,
            Adam(model.parameters(), lr=0.01),
            NoiseInjector(UncertaintyModel.both(0.01), draws=2, recompile_every=2, rng=3),
            loss_fn=CrossEntropyLoss(from_log_probs=True),
            config=TrainerConfig(epochs=2, batch_size=16, log_every=1),
            rng=0,
        )
        sink = RecordingSink()
        with use_progress_sink(sink):
            trainer.fit(features, targets)
        assert len(sink.records) == 2
        for record in sink.records:
            assert record["sigma_scale"] == 1.0
            assert record["exact_recompiles"] >= 1
            assert "incremental_recompiles" in record
