"""MetricsReport aggregation, round-trips and trace summaries."""

import json

import numpy as np
import pytest

from repro.analysis.monte_carlo import MonteCarloRunner
from repro.observability import (
    MetricsReport,
    observe,
    read_trace,
    summarize_trace,
)
from repro.observability.frames import ChunkFrame, KernelDispatch


def draw_trial(gen):
    return float(gen.standard_normal())


def _recorded_run(workers=None, **observe_kwargs):
    runner = MonteCarloRunner(iterations=12, chunk_size=4, workers=workers)
    with observe(**observe_kwargs) as rec:
        result = runner.run(draw_trial, rng=5)
    return result, rec


class TestAggregation:
    def test_from_recorder_aggregates_spans_and_chunks(self):
        _, rec = _recorded_run()
        report = MetricsReport.from_recorder(rec)
        (mc_span,) = [entry for entry in report.spans if entry["name"] == "mc/run"]
        assert mc_span["calls"] == 1
        assert mc_span["seconds"] >= 0.0
        assert len(report.chunks) == 3
        assert report.chunk_schedule() == [(0, 4), (4, 4), (8, 4)]
        assert report.chunk_schedule(label="mc") == report.chunk_schedule()
        assert report.chunk_schedule(label="other") == []

    def test_worker_table_and_imbalance(self):
        _, rec = _recorded_run(workers=2)
        report = MetricsReport.from_recorder(rec)
        assert report.workers, "sharded run must produce a worker table"
        assert sum(entry["chunks"] for entry in report.workers) == len(report.chunks)
        assert [entry["worker"] for entry in report.workers] == sorted(
            entry["worker"] for entry in report.workers
        )
        if report.imbalance is not None:
            assert report.imbalance >= 1.0

    def test_imbalance_none_without_busy_workers(self):
        report = MetricsReport.from_records([])
        assert report.imbalance is None
        assert report.workers == []

    def test_frame_dispatches_merge_into_kernels(self):
        frame = ChunkFrame(
            label="mc", start=0, count=4, seconds=0.1, worker=1,
            task_bytes=10, result_bytes=32,
            dispatches=[KernelDispatch("fused", "numpy", 16, 4, 2, 6, 0.05)],
        )
        parent_dispatch = {
            "type": "dispatch", "scope": "parent", "kernel": "fused",
            "backend": "numpy", "n": 16, "batch": 4, "columns": 2,
            "calls": 2, "seconds": 0.01,
        }
        report = MetricsReport.from_records([frame.to_record(), parent_dispatch])
        (entry,) = report.kernels
        assert entry["calls"] == 8, "worker + parent dispatches of one shape fold together"
        assert entry["seconds"] == pytest.approx(0.06)

    def test_counters_sorted(self):
        report = MetricsReport.from_records(
            [
                {"type": "counter", "name": "zeta", "value": 1.0},
                {"type": "counter", "name": "alpha", "value": 2.0},
            ]
        )
        assert list(report.counters) == ["alpha", "zeta"]


class TestRoundTrips:
    def test_save_load_round_trip(self, tmp_path):
        _, rec = _recorded_run()
        report = MetricsReport.from_recorder(rec)
        path = tmp_path / "metrics.json"
        report.save(str(path))
        loaded = MetricsReport.load(str(path))
        assert loaded.to_json() == report.to_json()

    def test_jsonl_trace_reproduces_the_live_report(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _, rec = _recorded_run(trace_path=str(trace))
        live = MetricsReport.from_recorder(rec)
        offline = MetricsReport.from_records(read_trace(str(trace)))
        assert offline.to_json() == live.to_json()

    def test_read_trace_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "meta"}\n\n{"type": "counter", "name": "c", "value": 1}\n')
        records = read_trace(str(path))
        assert [record["type"] for record in records] == ["meta", "counter"]

    def test_metrics_json_is_stable_sorted(self, tmp_path):
        _, rec = _recorded_run()
        path = tmp_path / "metrics.json"
        MetricsReport.from_recorder(rec).save(str(path))
        payload = path.read_text()
        assert json.loads(payload)["version"] == 1
        keys = list(json.loads(payload))
        assert keys == sorted(keys)


class TestRendering:
    def test_render_covers_every_section(self):
        _, rec = _recorded_run(workers=2)
        rec.counter_add("retunes", 3)
        rec.add_dispatch("fused", "numpy", 16, 4, 2, 0.01)
        text = MetricsReport.from_recorder(rec).render()
        assert "spans (total seconds, calls):" in text
        assert "mc/run" in text
        assert "counters:" in text
        assert "retunes = 3" in text
        assert "kernel dispatches" in text
        assert "fused/numpy" in text
        assert "chunks: 4 evaluated, 12 realizations" in text
        assert "workers (chunks, busy seconds, rows/s):" in text

    def test_render_empty_trace(self):
        assert MetricsReport.from_records([]).render() == "(empty trace)"

    def test_summarize_trace_end_to_end(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _recorded_run(trace_path=str(trace))
        text = summarize_trace(str(trace))
        assert "mc/run" in text
        assert "chunks: 3 evaluated" in text


class TestDeterminism:
    def test_samples_unchanged_by_exports(self, tmp_path):
        runner = MonteCarloRunner(iterations=12, chunk_size=4)
        baseline = runner.run(draw_trial, rng=5)
        exported, _ = _recorded_run(
            trace_path=str(tmp_path / "t.jsonl"), metrics_path=str(tmp_path / "m.json")
        )
        assert np.array_equal(baseline.samples, exported.samples)
