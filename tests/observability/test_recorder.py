"""Tests for the span/counter recorder and its zero-overhead disabled path."""

import json

import pytest

from repro.observability import observe, recording_enabled
from repro.observability.dispatch import active_collector
from repro.observability.recorder import (
    NullRecorder,
    Stopwatch,
    TraceRecorder,
    active,
    perf_seconds,
)


class TestStopwatch:
    def test_measures_elapsed_seconds(self):
        watch = Stopwatch()
        assert watch.seconds >= 0.0
        before = watch.seconds
        assert watch.seconds >= before

    def test_restart_rearms(self):
        watch = Stopwatch()
        for _ in range(1000):
            pass
        watch.restart()
        assert watch.seconds < 1.0

    def test_perf_seconds_is_monotonic(self):
        a = perf_seconds()
        b = perf_seconds()
        assert b >= a


class TestNullRecorder:
    def test_is_the_default_active_recorder(self):
        assert isinstance(active(), NullRecorder)
        assert not recording_enabled()

    def test_every_operation_is_a_noop(self):
        rec = NullRecorder()
        with rec.span("anything", attr=1) as span:
            span.set("key", "value")
        rec.event("evt", x=1)
        rec.counter_add("count", 2.0)
        rec.add_frame(object())
        rec.add_dispatch("k", "b", 4, 2, 3, 0.1)
        assert rec.enabled is False

    def test_span_is_a_cached_singleton(self):
        rec = NullRecorder()
        assert rec.span("a") is rec.span("b")


class TestTraceRecorder:
    def test_observe_installs_and_restores(self):
        assert isinstance(active(), NullRecorder)
        with observe() as rec:
            assert active() is rec
            assert recording_enabled()
            assert active_collector() is rec.dispatches
        assert isinstance(active(), NullRecorder)
        assert active_collector() is None

    def test_observe_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with observe():
                raise RuntimeError("boom")
        assert isinstance(active(), NullRecorder)

    def test_nested_observe_blocks_stack(self):
        with observe() as outer:
            with observe() as inner:
                assert active() is inner
            assert active() is outer

    def test_span_nesting_records_parents(self):
        rec = TraceRecorder()
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                assert rec.current_span is inner
            assert rec.current_span is outer
        assert rec.current_span is None
        names = {span.name: span for span in rec.spans}
        assert names["inner"].parent_id == names["outer"].span_id
        assert names["outer"].parent_id is None
        # Inner closes first, so it is appended first.
        assert [span.name for span in rec.spans] == ["inner", "outer"]

    def test_span_attributes_and_timing(self):
        rec = TraceRecorder()
        with rec.span("work", planned=3) as span:
            span.set("found", 7)
        record = rec.spans[0].to_record()
        assert record["type"] == "span"
        assert record["name"] == "work"
        assert record["attrs"] == {"planned": 3, "found": 7}
        assert record["seconds"] >= 0.0
        assert record["t1"] >= record["t0"]

    def test_span_records_error_type_on_exception(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError):
            with rec.span("failing"):
                raise ValueError("nope")
        assert rec.spans[0].attrs["error"] == "ValueError"

    def test_counters_accumulate(self):
        rec = TraceRecorder()
        rec.counter_add("hits")
        rec.counter_add("hits", 2.0)
        rec.counter_add("misses", 0.5)
        assert rec.counters == {"hits": 3.0, "misses": 0.5}

    def test_events_carry_fields(self):
        rec = TraceRecorder()
        rec.event("recalibrated", sigma=0.05)
        (event,) = rec.events
        assert event["type"] == "event"
        assert event["name"] == "recalibrated"
        assert event["sigma"] == 0.05

    def test_records_start_with_meta_and_cover_everything(self):
        rec = TraceRecorder()
        with rec.span("s"):
            pass
        rec.event("e")
        rec.counter_add("c", 1.0)
        rec.add_dispatch("fused", "numpy", 16, 8, 2, 0.01)
        records = list(rec.records())
        kinds = [record["type"] for record in records]
        assert kinds[0] == "meta"
        assert kinds.count("span") == 1
        assert kinds.count("event") == 1
        assert kinds.count("counter") == 1
        assert kinds.count("dispatch") == 1
        dispatch = next(r for r in records if r["type"] == "dispatch")
        assert dispatch["scope"] == "parent"
        assert dispatch["kernel"] == "fused"

    def test_write_jsonl_round_trips_through_json(self, tmp_path):
        rec = TraceRecorder()
        with rec.span("s", n=4):
            rec.counter_add("c", 2.0)
        path = tmp_path / "trace.jsonl"
        rec.write_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert any(r["type"] == "span" and r["name"] == "s" for r in records)
        assert any(r["type"] == "counter" and r["value"] == 2.0 for r in records)

    def test_write_jsonl_coerces_foreign_values(self, tmp_path):
        import numpy as np

        rec = TraceRecorder()
        with rec.span("s") as span:
            span.set("np_scalar", np.float64(1.5))
            span.set("np_ints", np.arange(3))
        path = tmp_path / "trace.jsonl"
        rec.write_jsonl(str(path))
        records = [json.loads(line) for line in path.read_text().strip().splitlines()]
        span_record = next(r for r in records if r["type"] == "span")
        assert span_record["attrs"]["np_scalar"] == 1.5
        assert span_record["attrs"]["np_ints"] == [0, 1, 2]

    def test_observe_exports_trace_and_metrics(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        with observe(trace_path=str(trace), metrics_path=str(metrics)) as rec:
            with rec.span("exported"):
                pass
        assert trace.exists()
        payload = json.loads(metrics.read_text())
        assert payload["version"] == 1
        assert payload["spans"][0]["name"] == "exported"

    def test_supplied_recorder_is_reused(self):
        rec = TraceRecorder()
        with observe(recorder=rec) as installed:
            assert installed is rec
