"""Worker-frame telemetry: picklable wrapper, deterministic merge, bit-identity."""

import pickle

import numpy as np
import pytest

from repro.analysis.monte_carlo import MonteCarloRunner
from repro.execution import resolve_backend
from repro.observability import observe
from repro.observability.dispatch import DispatchAggregator, active_collector, use_collector
from repro.observability.frames import (
    ChunkFrame,
    InstrumentedChunkEvaluator,
    KernelDispatch,
    _chunk_fields,
    _payload_bytes,
    map_chunks,
)


def draw_trial(gen):
    """Module-level scalar trial so process backends can pickle it."""
    return float(gen.standard_normal())


def echo_chunk(task):
    """Module-level chunk evaluator returning ``(start, samples)``."""
    start, _, streams = task
    return start, np.full(len(streams), float(start))


class TestChunkFrame:
    def test_record_round_trip(self):
        frame = ChunkFrame(
            label="mc",
            start=10,
            count=5,
            seconds=0.25,
            worker=4242,
            task_bytes=100,
            result_bytes=40,
            dispatches=[KernelDispatch("fused", "numpy", 16, 5, 2, 3, 0.01)],
            index=2,
        )
        record = frame.to_record()
        assert record["type"] == "frame"
        rebuilt = ChunkFrame.from_record(record)
        assert rebuilt == frame

    def test_chunk_fields_reads_engine_task_layout(self):
        assert _chunk_fields((12, draw_trial, (object(), object(), object()))) == (12, 3)

    def test_chunk_fields_tolerates_foreign_shapes(self):
        assert _chunk_fields("not a tuple") == (-1, 0)
        assert _chunk_fields(()) == (-1, 0)
        assert _chunk_fields((0, draw_trial, 17)) == (0, 0)

    def test_payload_bytes_reads_only_nbytes(self):
        samples = np.zeros(8, dtype=np.float64)
        assert _payload_bytes((3, samples)) == samples.nbytes
        assert _payload_bytes([samples, (samples,)]) == 2 * samples.nbytes
        assert _payload_bytes("scalar") == 0


class TestInstrumentedChunkEvaluator:
    def test_is_picklable(self):
        wrapped = InstrumentedChunkEvaluator(echo_chunk, "mc")
        clone = pickle.loads(pickle.dumps(wrapped))
        assert clone == wrapped

    def test_returns_result_and_frame(self):
        wrapped = InstrumentedChunkEvaluator(echo_chunk, "mc")
        task = (4, echo_chunk, tuple(range(3)))
        result, frame = wrapped(task)
        start, samples = result
        assert start == 4, "result must pass through unchanged"
        assert np.array_equal(samples, np.full(3, 4.0))
        assert frame.label == "mc"
        assert frame.start == 4
        assert frame.count == 3
        assert frame.seconds >= 0.0
        assert frame.worker > 0
        assert frame.task_bytes > 0
        assert frame.result_bytes == 3 * 8  # three float64 samples
        assert frame.index == -1  # stamped by the parent, not the worker

    def test_chunk_local_collector_shadows_and_restores(self):
        parent = DispatchAggregator()
        with use_collector(parent):
            wrapped = InstrumentedChunkEvaluator(echo_chunk, "mc")
            wrapped((0, echo_chunk, tuple(range(2))))
            assert active_collector() is parent
        # The inline evaluation never recorded into the parent collector.
        assert len(parent) == 0


class TestMapChunks:
    def test_disabled_path_is_a_pass_through(self):
        backend = resolve_backend(None, None)
        tasks = [(0, echo_chunk, tuple(range(2))), (2, echo_chunk, tuple(range(2)))]
        results = map_chunks(backend, echo_chunk, tasks)
        assert [start for start, _ in results] == [0, 2]

    def test_enabled_path_strips_frames_in_task_order(self):
        backend = resolve_backend(None, None)
        tasks = [(start, echo_chunk, tuple(range(2))) for start in (0, 2, 4)]
        with observe() as rec:
            results = map_chunks(backend, echo_chunk, tasks, label="mc")
        assert [start for start, _ in results] == [0, 2, 4]
        assert [frame.index for frame in rec.frames] == [0, 1, 2]
        assert [frame.start for frame in rec.frames] == [0, 2, 4]
        assert all(frame.label == "mc" for frame in rec.frames)


class TestDeterministicMerge:
    """ISSUE invariants: bit-identity and frame determinism across workers."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_traced_run_is_bit_identical_to_untraced(self, workers):
        runner = MonteCarloRunner(iterations=20, chunk_size=5, workers=workers)
        untraced = runner.run(draw_trial, rng=7)
        with observe():
            traced = runner.run(draw_trial, rng=7)
        assert np.array_equal(untraced.samples, traced.samples)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_frame_schedule_matches_the_planned_chunking(self, workers):
        """Frames reproduce exactly the schedule ``plan_chunk_size`` planned.

        The planned chunk size legitimately varies with the worker count
        (parallel backends split finer for load balance) but never the
        coverage: frames tile ``[0, iterations)`` in order, and rerunning at
        the same worker count reproduces the identical frame list.
        """
        from repro.analysis.monte_carlo import plan_chunk_size

        iterations = 20
        runner = MonteCarloRunner(iterations=iterations, chunk_size=5, workers=workers)
        backend = resolve_backend(None, workers)
        chunk = plan_chunk_size(iterations, backend, 5, draw_trial)
        expected = [
            (start, min(chunk, iterations - start))
            for start in range(0, iterations, chunk)
        ]
        schedules = []
        for _ in range(2):
            with observe() as rec:
                runner.run(draw_trial, rng=7)
            assert [f.index for f in rec.frames] == list(range(len(rec.frames)))
            schedules.append([(f.start, f.count) for f in rec.frames])
        assert schedules[0] == expected
        assert schedules[0] == schedules[1], "frame content must be run-invariant"

    def test_multiprocess_frames_carry_worker_pids(self):
        import os

        runner = MonteCarloRunner(iterations=8, chunk_size=2, workers=2)
        with observe() as rec:
            runner.run(draw_trial, rng=3)
        pids = {frame.worker for frame in rec.frames}
        assert pids, "expected frames from the sharded run"
        assert os.getpid() not in pids, "chunks must have run in worker processes"

    def test_rng_untouched_by_tracing(self):
        """Recording consumes no randomness: same stream before and after."""
        gen_a = np.random.default_rng(11)
        gen_b = np.random.default_rng(11)
        baseline = gen_a.standard_normal(4)
        with observe() as rec:
            with rec.span("noise-free"):
                rec.counter_add("c")
        assert np.array_equal(baseline, gen_b.standard_normal(4))
