"""Perturbation-process seam: i.i.d. equivalence, temporal laws, re-nulling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh.svd_layer import PhotonicLinearLayer
from repro.utils.rng import spawn_rngs
from repro.variation.models import UncertaintyModel
from repro.variation.process import (
    PROCESS_NAMES,
    DriftRampProcess,
    IIDGaussianProcess,
    OrnsteinUhlenbeckProcess,
    RandomWalkProcess,
    build_process,
)
from repro.variation.sampler import (
    sample_network_perturbation,
    sample_network_perturbation_batch,
)


def _layers(seed=3, sizes=((6, 6), (6, 6))):
    gen = np.random.default_rng(seed)
    layers = []
    for out_dim, in_dim in sizes:
        weight = (
            gen.standard_normal((out_dim, in_dim))
            + 1j * gen.standard_normal((out_dim, in_dim))
        ) / 3.0
        layers.append(PhotonicLinearLayer(weight))
    return layers


def _tiny_layers(seed=5):
    """One 2x2 layer (single-MZI meshes): cheap enough for statistics."""
    return _layers(seed=seed, sizes=((2, 2),))


def _flat_fields(batches):
    """Every non-None array field of a per-layer batch list, in order."""
    fields = []
    for batch in batches:
        if batch is None:
            continue
        for stage in (batch.u, batch.v, batch.sigma):
            if stage is None:
                continue
            for name in stage._FIELDS:
                value = getattr(stage, name)
                if value is not None:
                    fields.append(np.asarray(value))
    return fields


def _flat_single_fields(perturbations):
    """Every non-None array field of a per-layer single-draw list, in order."""
    fields = []
    for layer in perturbations:
        if layer is None:
            continue
        for stage in (layer.u, layer.v, layer.sigma):
            if stage is None:
                continue
            for name in (
                "delta_theta",
                "delta_phi",
                "delta_r_in",
                "delta_r_out",
                "delta_output_phase",
            ):
                value = getattr(stage, name, None)
                if value is not None:
                    fields.append(np.asarray(value))
    return fields


def _assert_batches_equal(left, right):
    left_fields, right_fields = _flat_fields(left), _flat_fields(right)
    assert len(left_fields) == len(right_fields)
    for a, b in zip(left_fields, right_fields):
        np.testing.assert_array_equal(a, b)


class TestIIDEquivalence:
    def test_sample_batch_matches_legacy_sampler(self):
        layers = _layers()
        model = UncertaintyModel.both(0.05)
        process_batch = IIDGaussianProcess().sample_batch(
            layers, model, spawn_rngs(0, 5)
        )
        legacy_batch = sample_network_perturbation_batch(layers, model, spawn_rngs(0, 5))
        _assert_batches_equal(process_batch, legacy_batch)

    def test_sample_single_matches_legacy_sampler(self):
        layers = _layers()
        model = UncertaintyModel.both(0.05)
        single = IIDGaussianProcess().sample_single(
            layers, model, np.random.default_rng(9)
        )
        legacy = sample_network_perturbation(layers, model, np.random.default_rng(9))
        single_fields = _flat_single_fields(single)
        legacy_fields = _flat_single_fields(legacy)
        assert len(single_fields) == len(legacy_fields) > 0
        for a, b in zip(single_fields, legacy_fields):
            np.testing.assert_array_equal(a, b)

    def test_state_step0_matches_legacy_sampler(self):
        """Every process starts at the fabrication draw = the legacy batch."""
        layers = _layers()
        model = UncertaintyModel.both(0.05)
        for process in (
            IIDGaussianProcess(),
            OrnsteinUhlenbeckProcess(),
            RandomWalkProcess(),
            DriftRampProcess(),
        ):
            state = process.init_state(layers, model, spawn_rngs(0, 4))
            state.advance()
            legacy = sample_network_perturbation_batch(layers, model, spawn_rngs(0, 4))
            _assert_batches_equal(state.realize(), legacy)

    def test_iid_state_every_step_matches_fresh_draws(self):
        """The i.i.d. process is memoryless: step t equals a fresh draw."""
        layers = _layers()
        model = UncertaintyModel.both(0.05)
        state = IIDGaussianProcess().init_state(layers, model, spawn_rngs(0, 3))
        reference = [g for g in spawn_rngs(0, 3)]
        for _ in range(3):
            state.advance()
            legacy = sample_network_perturbation_batch(layers, model, reference)
            _assert_batches_equal(state.realize(), legacy)


class TestChunkInvariance:
    @pytest.mark.parametrize("process_name", PROCESS_NAMES)
    def test_timelines_split_into_chunks_bit_identical(self, process_name):
        """Chunking the timeline axis never changes any step's realization."""
        layers = _layers()
        model = UncertaintyModel.both(0.04)
        process = build_process(process_name, step_scale=0.3, rate=0.1)
        steps = 4
        full_state = process.init_state(layers, model, spawn_rngs(7, 6))
        generators = spawn_rngs(7, 6)
        chunk_states = [
            process.init_state(layers, model, generators[:2]),
            process.init_state(layers, model, generators[2:]),
        ]
        for _ in range(steps):
            full_state.advance()
            for state in chunk_states:
                state.advance()
            full_fields = _flat_fields(full_state.realize())
            chunk_fields = [
                _flat_fields(state.realize()) for state in chunk_states
            ]
            for index, full in enumerate(full_fields):
                stacked = np.concatenate(
                    [fields[index] for fields in chunk_fields], axis=0
                )
                np.testing.assert_array_equal(full, stacked)


class TestTemporalLaws:
    def _phase_draws(self, process, steps, timelines=2000, sigma=0.05, seed=11):
        """Normalized delta_theta of the U mesh at every step, (T, B) stack."""
        layers = _tiny_layers()
        model = UncertaintyModel.phase_only(sigma)
        state = process.init_state(layers, model, spawn_rngs(seed, timelines))
        track = []
        for _ in range(steps):
            state.advance()
            batch = state.realize()[0]
            track.append(np.asarray(batch.u.delta_theta)[:, 0] / model.phase_std)
        return np.stack(track)

    def test_ou_is_stationary_with_lag1_autocorrelation_rho(self):
        process = OrnsteinUhlenbeckProcess(correlation_time=5.0, dt=1.0)
        track = self._phase_draws(process, steps=12)
        late = track[6:]
        # Stationary N(0, 1) marginal at every step.
        assert abs(float(late.var()) - 1.0) < 0.1
        assert abs(float(late.mean())) < 0.05
        lag1 = np.corrcoef(track[8], track[9])[0, 1]
        assert abs(float(lag1) - process.rho) < 0.06

    def test_walk_variance_grows_linearly(self):
        scale = 0.5
        process = RandomWalkProcess(step_scale=scale)
        track = self._phase_draws(process, steps=9)
        for step in (0, 4, 8):
            expected = 1.0 + step * scale**2
            measured = float(track[step].var())
            assert abs(measured - expected) < 0.2 * expected

    def test_ramp_is_deterministic_after_init(self):
        rate = 0.07
        ramp_track = self._phase_draws(DriftRampProcess(rate=rate), steps=5, timelines=8)
        iid_step0 = self._phase_draws(IIDGaussianProcess(), steps=1, timelines=8)[0]
        for step in range(5):
            np.testing.assert_allclose(
                ramp_track[step], iid_step0 + step * rate, rtol=0, atol=1e-12
            )

    def test_ramp_consumes_no_rng_after_init(self):
        layers = _tiny_layers()
        model = UncertaintyModel.phase_only(0.05)
        generators = spawn_rngs(3, 4)
        state = DriftRampProcess().init_state(layers, model, generators)
        for _ in range(4):
            state.advance()
        reference = spawn_rngs(3, 4)
        ref_state = DriftRampProcess().init_state(layers, model, reference)
        ref_state.advance()  # only the init draw touches the streams
        assert all(
            a.bit_generator.state == b.bit_generator.state
            for a, b in zip(generators, reference)
        )


class TestRenull:
    def _advanced_state(self, process, model=None, timelines=6, steps=3, seed=13):
        layers = _layers()
        model = model if model is not None else UncertaintyModel.phase_only(0.06)
        state = process.init_state(layers, model, spawn_rngs(seed, timelines))
        for _ in range(steps):
            state.advance()
        return state

    def test_renull_zeroes_drift_and_realization(self):
        state = self._advanced_state(RandomWalkProcess(step_scale=0.4))
        assert float(np.min(state.drift_rms())) > 0.0
        state.renull()
        np.testing.assert_allclose(np.asarray(state.drift_rms()), 0.0, atol=1e-15)
        for field in _flat_fields(state.realize()):
            np.testing.assert_allclose(field, 0.0, atol=1e-15)

    def test_renull_masked_rows_only(self):
        state = self._advanced_state(RandomWalkProcess(step_scale=0.4))
        before = np.asarray(state.drift_rms()).copy()
        mask = np.zeros(6, dtype=bool)
        mask[1] = mask[4] = True
        state.renull(rows=mask)
        after = np.asarray(state.drift_rms())
        np.testing.assert_allclose(after[mask], 0.0, atol=1e-15)
        np.testing.assert_array_equal(after[~mask], before[~mask])

    def test_drift_resumes_after_renull(self):
        state = self._advanced_state(RandomWalkProcess(step_scale=0.4))
        state.renull()
        state.advance()
        assert float(np.min(state.drift_rms())) > 0.0

    def test_splitter_only_model_has_no_tunable_drift(self):
        """Splitter errors are fabrication, not tunable: nothing to re-null."""
        state = self._advanced_state(
            RandomWalkProcess(step_scale=0.4),
            model=UncertaintyModel.splitter_only(0.06),
        )
        np.testing.assert_allclose(np.asarray(state.drift_rms()), 0.0, atol=1e-15)
        before = _flat_fields(state.realize())
        state.renull()  # no tunable slices -> a no-op, not an error
        after = _flat_fields(state.realize())
        for left, right in zip(before, after):
            np.testing.assert_array_equal(left, right)


class TestBuildProcess:
    def test_names_map_to_types(self):
        assert isinstance(build_process("iid"), IIDGaussianProcess)
        assert isinstance(build_process("ou"), OrnsteinUhlenbeckProcess)
        assert isinstance(build_process("walk"), RandomWalkProcess)
        assert isinstance(build_process("ramp"), DriftRampProcess)
        assert set(PROCESS_NAMES) == {"iid", "ou", "walk", "ramp"}

    def test_knobs_are_forwarded(self):
        ou = build_process("OU", correlation_time=9.0, dt=0.5)
        assert ou.correlation_time == 9.0 and ou.dt == 0.5
        assert build_process("walk", step_scale=0.25).step_scale == 0.25
        assert build_process("ramp", rate=0.02).rate == 0.02

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown perturbation process"):
            build_process("brownian-bridge")

    def test_linearity_flags(self):
        for name in PROCESS_NAMES:
            assert build_process(name).linear_in_sigma
        assert not DriftRampProcess().uses_noise_after_init
        assert IIDGaussianProcess().uses_noise_after_init
