"""Tests for thermal crosstalk and correlated FPV models."""

import numpy as np
import pytest

from repro.exceptions import VariationModelError
from repro.mesh import MZIMesh
from repro.utils import random_unitary
from repro.variation import CorrelatedFPVModel, ThermalCrosstalkModel, UncertaintyModel


@pytest.fixture
def mesh_6():
    return MZIMesh.from_unitary(random_unitary(6, rng=3))


class TestThermalCrosstalk:
    def test_coupling_decays_with_distance(self):
        model = ThermalCrosstalkModel(coupling=0.05, decay_length=1.0)
        assert model.coupling_coefficient(1.0) > model.coupling_coefficient(2.0) > 0.0

    def test_coupling_zero_beyond_max_distance(self):
        model = ThermalCrosstalkModel(coupling=0.05, max_distance=2.0)
        assert model.coupling_coefficient(3.0) == 0.0
        assert model.coupling_coefficient(0.0) == 0.0

    def test_coupling_matrix_properties(self, mesh_6):
        model = ThermalCrosstalkModel(coupling=0.03)
        matrix = model.coupling_matrix(mesh_6)
        assert matrix.shape == (mesh_6.num_mzis, mesh_6.num_mzis)
        assert np.allclose(np.diag(matrix), 0.0)
        assert np.all(matrix >= 0.0)

    def test_zero_coupling_induces_no_phase_error(self, mesh_6):
        model = ThermalCrosstalkModel(coupling=0.0)
        delta_theta, delta_phi = model.induced_phase_errors(mesh_6)
        assert np.allclose(delta_theta, 0.0) and np.allclose(delta_phi, 0.0)

    def test_induced_errors_scale_with_coupling(self, mesh_6):
        weak = ThermalCrosstalkModel(coupling=0.01).induced_phase_errors(mesh_6)[0]
        strong = ThermalCrosstalkModel(coupling=0.05).induced_phase_errors(mesh_6)[0]
        assert strong.sum() > weak.sum()

    def test_perturbation_changes_mesh_matrix(self, mesh_6):
        model = ThermalCrosstalkModel(coupling=0.05)
        perturbed = mesh_6.matrix(model.perturbation(mesh_6))
        assert not np.allclose(perturbed, mesh_6.ideal_matrix(), atol=1e-6)

    def test_statistics_keys(self, mesh_6):
        stats = ThermalCrosstalkModel(coupling=0.02).phase_error_statistics(mesh_6)
        assert set(stats) == {"mean", "max", "std"}
        assert stats["max"] >= stats["mean"] >= 0.0

    def test_parameter_validation(self):
        with pytest.raises(VariationModelError):
            ThermalCrosstalkModel(coupling=1.5)
        with pytest.raises(VariationModelError):
            ThermalCrosstalkModel(decay_length=0.0)
        with pytest.raises(VariationModelError):
            ThermalCrosstalkModel(pitch=-1.0)
        with pytest.raises(VariationModelError):
            ThermalCrosstalkModel(max_distance=0.0)


class TestCorrelatedFPV:
    def test_covariance_diagonal_is_sigma_squared(self, mesh_6):
        model = CorrelatedFPVModel(correlation_length=2.0)
        cov = model.covariance(mesh_6, sigma=0.1)
        assert np.allclose(np.diag(cov), 0.01)

    def test_zero_correlation_length_is_independent(self, mesh_6):
        model = CorrelatedFPVModel(correlation_length=0.0)
        cov = model.covariance(mesh_6, sigma=0.2)
        assert np.allclose(cov, 0.04 * np.eye(mesh_6.num_mzis))

    def test_field_statistics(self, mesh_6):
        model = CorrelatedFPVModel(correlation_length=1.5)
        gen = np.random.default_rng(0)
        fields = np.stack([model.sample_field(mesh_6, 0.1, gen) for _ in range(300)])
        assert fields.std() == pytest.approx(0.1, rel=0.15)

    def test_zero_sigma_gives_zero_field(self, mesh_6):
        assert np.allclose(CorrelatedFPVModel().sample_field(mesh_6, 0.0, rng=0), 0.0)

    def test_neighbours_are_correlated(self, mesh_6):
        correlated = CorrelatedFPVModel(correlation_length=3.0)
        independent = CorrelatedFPVModel(correlation_length=1e-6)
        assert correlated.empirical_correlation(mesh_6, 0.1, samples=150, rng=0) > 0.5
        assert abs(independent.empirical_correlation(mesh_6, 0.1, samples=150, rng=0)) < 0.3

    def test_sample_mesh_perturbation_matches_marginals(self, mesh_6):
        model = CorrelatedFPVModel(correlation_length=2.0)
        uncertainty = UncertaintyModel.both(0.05)
        gen = np.random.default_rng(1)
        draws = np.concatenate(
            [model.sample_mesh_perturbation(mesh_6, uncertainty, gen).delta_theta for _ in range(150)]
        )
        assert np.std(draws) == pytest.approx(uncertainty.phase_std, rel=0.15)

    def test_phase_only_model_leaves_splitters(self, mesh_6):
        model = CorrelatedFPVModel()
        perturbation = model.sample_mesh_perturbation(mesh_6, UncertaintyModel.phase_only(0.05), rng=0)
        assert np.allclose(perturbation.delta_r_in, 0.0)

    def test_parameter_validation(self):
        with pytest.raises(VariationModelError):
            CorrelatedFPVModel(correlation_length=-1.0)
        with pytest.raises(VariationModelError):
            CorrelatedFPVModel(jitter=0.0)
