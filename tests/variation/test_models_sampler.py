"""Tests for the uncertainty models and the perturbation samplers."""

import numpy as np
import pytest

from repro.exceptions import VariationModelError
from repro.mesh import MZIMesh
from repro.photonics import constants
from repro.utils import random_complex_matrix, random_unitary
from repro.mesh.svd_layer import PhotonicLinearLayer
from repro.variation import (
    UncertaintyModel,
    sample_diagonal_perturbation,
    sample_layer_perturbation,
    sample_mesh_perturbation,
    sample_network_perturbation,
    sample_single_mzi_perturbation,
)


class TestUncertaintyModel:
    def test_sigma_normalization_phases(self):
        model = UncertaintyModel(sigma_phs=0.05, sigma_bes=0.0)
        assert model.phase_std == pytest.approx(0.05 * 2 * np.pi)
        assert model.splitter_std == 0.0

    def test_sigma_normalization_splitters(self):
        model = UncertaintyModel(sigma_phs=0.0, sigma_bes=0.05)
        assert model.splitter_std == pytest.approx(0.05 / np.sqrt(2))

    def test_case_constructors(self):
        phs = UncertaintyModel.phase_only(0.1)
        assert phs.perturb_phases and not phs.perturb_splitters
        bes = UncertaintyModel.splitter_only(0.1)
        assert bes.perturb_splitters and not bes.perturb_phases
        both = UncertaintyModel.both(0.1)
        assert both.sigma_phs == both.sigma_bes == 0.1

    def test_mature_process_values(self):
        model = UncertaintyModel.mature_process()
        assert model.sigma_phs == pytest.approx(constants.MATURE_PROCESS_PHASE_ERROR_FRACTION)
        # ~0.21 rad as quoted in the paper
        assert model.phase_std == pytest.approx(0.21, abs=0.01)

    def test_disabled_families_have_zero_std(self):
        model = UncertaintyModel(sigma_phs=0.1, sigma_bes=0.1, perturb_phases=False, perturb_splitters=False)
        assert model.phase_std == 0.0 and model.splitter_std == 0.0 and model.is_null

    def test_with_sigma(self):
        model = UncertaintyModel.both(0.05).with_sigma(sigma_phs=0.1)
        assert model.sigma_phs == 0.1 and model.sigma_bes == 0.05

    def test_rejects_negative_sigmas(self):
        with pytest.raises(VariationModelError):
            UncertaintyModel(sigma_phs=-0.1)
        with pytest.raises(VariationModelError):
            UncertaintyModel(sigma_bes=-0.1)


class TestMeshSampler:
    @pytest.fixture
    def mesh(self):
        return MZIMesh.from_unitary(random_unitary(6, rng=0))

    def test_shapes_and_reproducibility(self, mesh):
        model = UncertaintyModel.both(0.05)
        a = sample_mesh_perturbation(mesh, model, rng=1)
        b = sample_mesh_perturbation(mesh, model, rng=1)
        assert a.delta_theta.shape == (mesh.num_mzis,)
        assert np.allclose(a.delta_theta, b.delta_theta)
        assert np.allclose(a.delta_r_in, b.delta_r_in)

    def test_empirical_std_matches_model(self, mesh):
        model = UncertaintyModel.both(0.05)
        gen = np.random.default_rng(0)
        draws = np.concatenate(
            [sample_mesh_perturbation(mesh, model, gen).delta_theta for _ in range(200)]
        )
        assert np.std(draws) == pytest.approx(model.phase_std, rel=0.1)

    def test_phase_only_leaves_splitters_untouched(self, mesh):
        perturbation = sample_mesh_perturbation(mesh, UncertaintyModel.phase_only(0.1), rng=0)
        assert np.allclose(perturbation.delta_r_in, 0.0)
        assert not np.allclose(perturbation.delta_theta, 0.0)

    def test_splitter_only_leaves_phases_untouched(self, mesh):
        perturbation = sample_mesh_perturbation(mesh, UncertaintyModel.splitter_only(0.1), rng=0)
        assert np.allclose(perturbation.delta_theta, 0.0)
        assert not np.allclose(perturbation.delta_r_in, 0.0)

    def test_per_mzi_sigma_override(self, mesh):
        model = UncertaintyModel.both(0.05)
        sigma_map = np.zeros(mesh.num_mzis)
        sigma_map[3] = 0.5
        gen = np.random.default_rng(0)
        draws = np.stack(
            [
                sample_mesh_perturbation(mesh, model, gen, sigma_phs_per_mzi=sigma_map, sigma_bes_per_mzi=sigma_map).delta_theta
                for _ in range(100)
            ]
        )
        assert np.allclose(draws[:, np.arange(mesh.num_mzis) != 3], 0.0)
        assert np.std(draws[:, 3]) > 1.0

    def test_output_phase_perturbation_optional(self, mesh):
        silent = sample_mesh_perturbation(mesh, UncertaintyModel.both(0.05), rng=0)
        assert silent.delta_output_phase is None
        noisy = sample_mesh_perturbation(
            mesh, UncertaintyModel.both(0.05, perturb_output_phases=True), rng=0
        )
        assert noisy.delta_output_phase.shape == (mesh.n,)

    def test_single_mzi_perturbation_targets_one_device(self, mesh):
        perturbation = sample_single_mzi_perturbation(mesh, 4, UncertaintyModel.both(0.1), rng=0)
        touched = np.flatnonzero(perturbation.delta_theta)
        assert set(touched) <= {4}
        assert perturbation.delta_theta[4] != 0.0
        with pytest.raises(IndexError):
            sample_single_mzi_perturbation(mesh, mesh.num_mzis, UncertaintyModel.both(0.1))


class TestLayerAndNetworkSampler:
    def test_diagonal_perturbation_respects_switch(self):
        model_off = UncertaintyModel.both(0.1, perturb_sigma_stage=False)
        assert sample_diagonal_perturbation(4, model_off, rng=0) is None
        model_on = UncertaintyModel.both(0.1)
        perturbation = sample_diagonal_perturbation(4, model_on, rng=0)
        assert perturbation.delta_theta.shape == (4,)

    def test_layer_perturbation_covers_all_stages(self):
        layer = PhotonicLinearLayer(random_complex_matrix(4, 5, rng=0))
        perturbation = sample_layer_perturbation(layer, UncertaintyModel.both(0.05), rng=1)
        assert perturbation.u.delta_theta.shape == (layer.mesh_u.num_mzis,)
        assert perturbation.v.delta_theta.shape == (layer.mesh_v.num_mzis,)
        assert perturbation.sigma.delta_theta.shape == (layer.diagonal.num_mzis,)

    def test_network_perturbation_one_entry_per_layer(self):
        layers = [
            PhotonicLinearLayer(random_complex_matrix(4, 4, rng=0)),
            PhotonicLinearLayer(random_complex_matrix(3, 4, rng=1)),
        ]
        network = sample_network_perturbation(layers, UncertaintyModel.both(0.05), rng=2)
        assert len(network) == 2
