"""Tests for zonal partitioning (EXP 2 infrastructure)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mesh import MZIMesh
from repro.utils import random_unitary
from repro.variation import ZoneGrid


@pytest.fixture
def mesh_8():
    return MZIMesh.from_unitary(random_unitary(8, rng=0))


class TestZoneGrid:
    def test_every_mzi_belongs_to_exactly_one_zone(self, mesh_8):
        grid = ZoneGrid(mesh_8, zone_rows=2, zone_cols=2)
        covered = []
        for zone in grid.zones():
            covered.extend(zone.mzi_indices)
        assert sorted(covered) == list(range(mesh_8.num_mzis))

    def test_zone_shape(self, mesh_8):
        grid = ZoneGrid(mesh_8, 2, 2)
        expected_rows = int(np.ceil(mesh_8.num_rows / 2))
        expected_cols = int(np.ceil(mesh_8.num_columns / 2))
        assert grid.shape == (expected_rows, expected_cols)
        assert grid.num_zones == expected_rows * expected_cols

    def test_zone_membership_respects_grid_coordinates(self, mesh_8):
        grid = ZoneGrid(mesh_8, 2, 2)
        positions = mesh_8.grid_positions()
        for zone in grid.zones():
            for index in zone.mzi_indices:
                col, row = positions[index]
                assert row // 2 == zone.row_index
                assert col // 2 == zone.col_index

    def test_zone_lookup_helpers(self, mesh_8):
        grid = ZoneGrid(mesh_8, 2, 2)
        zone = grid.zones()[0]
        assert grid.zone_at(zone.row_index, zone.col_index) == zone
        assert grid.zone_of_mzi(zone.mzi_indices[0]) == zone
        with pytest.raises(ConfigurationError):
            grid.zone_at(99, 99)
        with pytest.raises(ConfigurationError):
            grid.zone_of_mzi(10**6)

    def test_mask_and_sigma_map(self, mesh_8):
        grid = ZoneGrid(mesh_8, 2, 2)
        zone = grid.zones()[1]
        mask = grid.mask_for_zone(zone)
        assert mask.sum() == zone.num_mzis
        sigma_map = grid.sigma_map(zone, zone_sigma=0.1, background_sigma=0.05)
        assert np.allclose(sigma_map[mask], 0.1)
        assert np.allclose(sigma_map[~mask], 0.05)

    def test_sigma_map_rejects_negative(self, mesh_8):
        grid = ZoneGrid(mesh_8, 2, 2)
        with pytest.raises(ConfigurationError):
            grid.sigma_map(grid.zones()[0], -0.1, 0.05)

    def test_occupancy_matrix_totals(self, mesh_8):
        grid = ZoneGrid(mesh_8, 2, 2)
        assert grid.occupancy_matrix().sum() == mesh_8.num_mzis

    def test_single_zone_covers_everything(self, mesh_8):
        grid = ZoneGrid(mesh_8, zone_rows=100, zone_cols=100)
        zones = grid.zones()
        assert len(zones) == 1 and zones[0].num_mzis == mesh_8.num_mzis

    def test_invalid_zone_size(self, mesh_8):
        with pytest.raises(ConfigurationError):
            ZoneGrid(mesh_8, zone_rows=0)

    def test_paper_zone_size_on_16x16(self):
        """The paper's 2x2 zones on a 16-mode Clements mesh: 8x8 zone grid."""
        mesh = MZIMesh.from_unitary(random_unitary(16, rng=1))
        grid = ZoneGrid(mesh, 2, 2)
        assert grid.shape == (8, 8)
        assert sum(z.num_mzis for z in grid.zones()) == 120
