"""Tests for dataset splitting and batching."""

import numpy as np
import pytest

from repro.datasets import batch_iterator, generate_dataset, stratified_split, train_val_split
from repro.exceptions import ConfigurationError


def test_train_val_split_sizes():
    data = generate_dataset(50, rng=0)
    train, val = train_val_split(data, val_fraction=0.2, rng=0)
    assert len(train) == 40 and len(val) == 10


def test_train_val_split_disjoint_and_complete():
    data = generate_dataset(30, rng=1)
    data.images[:, 0, 0] = np.arange(30)  # tag every sample uniquely
    train, val = train_val_split(data, val_fraction=0.3, rng=0)
    tags = np.concatenate([train.images[:, 0, 0], val.images[:, 0, 0]])
    assert sorted(tags.tolist()) == list(range(30))


def test_train_val_split_invalid_fraction():
    data = generate_dataset(10, rng=2)
    with pytest.raises(ConfigurationError):
        train_val_split(data, val_fraction=0.0)
    with pytest.raises(ConfigurationError):
        train_val_split(data, val_fraction=1.0)


def test_stratified_split_keeps_all_classes():
    data = generate_dataset(60, rng=3)
    train, val = stratified_split(data, val_fraction=0.2, rng=0)
    assert set(np.unique(val.labels)) == set(np.unique(data.labels))
    assert len(train) + len(val) == 60


def test_batch_iterator_batches_and_last_partial():
    x = np.arange(10).reshape(10, 1)
    y = np.arange(10)
    batches = list(batch_iterator(x, y, batch_size=4))
    assert [len(b[1]) for b in batches] == [4, 4, 2]


def test_batch_iterator_shuffle_deterministic():
    x = np.arange(10).reshape(10, 1)
    y = np.arange(10)
    a = [b[1].tolist() for b in batch_iterator(x, y, 3, shuffle=True, rng=5)]
    b = [b[1].tolist() for b in batch_iterator(x, y, 3, shuffle=True, rng=5)]
    assert a == b


def test_batch_iterator_errors():
    with pytest.raises(ConfigurationError):
        list(batch_iterator(np.zeros((3, 1)), np.zeros(2), 1))
    with pytest.raises(ConfigurationError):
        list(batch_iterator(np.zeros((3, 1)), np.zeros(3), 0))
