"""Tests for the synthetic MNIST substitute."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    IMAGE_SIZE,
    NUM_CLASSES,
    Dataset,
    generate_dataset,
    load_synthetic_mnist,
    random_style,
    render_digit,
)
from repro.exceptions import ConfigurationError


class TestRenderDigit:
    def test_shape_and_range(self):
        image = render_digit(3, rng=0)
        assert image.shape == (IMAGE_SIZE, IMAGE_SIZE)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_non_trivial_content(self):
        image = render_digit(8, rng=1)
        assert image.max() > 0.5
        assert image.mean() < 0.6  # digits are sparse strokes, not full frames

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=10**6))
    def test_property_all_digits_render(self, digit, seed):
        image = render_digit(digit, rng=seed)
        assert image.shape == (IMAGE_SIZE, IMAGE_SIZE)
        assert np.isfinite(image).all()
        assert image.max() > 0.0

    def test_rejects_invalid_digit(self):
        with pytest.raises(ConfigurationError):
            render_digit(10)

    def test_custom_image_size(self):
        assert render_digit(1, rng=0, image_size=14).shape == (14, 14)

    def test_styles_change_output(self):
        a = render_digit(5, style=random_style(0), rng=0)
        b = render_digit(5, style=random_style(1), rng=0)
        assert not np.allclose(a, b)

    def test_classes_are_visually_distinct(self):
        """Different digit skeletons must produce measurably different images."""
        zero = render_digit(0, rng=0, style=random_style(0, variability=0.0))
        one = render_digit(1, rng=0, style=random_style(0, variability=0.0))
        assert np.abs(zero - one).mean() > 0.05


class TestDataset:
    def test_generate_balanced_counts(self):
        data = generate_dataset(50, rng=0)
        assert len(data) == 50
        counts = data.class_counts()
        assert counts.max() - counts.min() <= 1

    def test_generate_unbalanced(self):
        data = generate_dataset(30, rng=0, balanced=False)
        assert len(data) == 30

    def test_generate_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            generate_dataset(0)

    def test_dataset_validation(self):
        with pytest.raises(ConfigurationError):
            Dataset(images=np.zeros((2, 4, 4)), labels=np.zeros(3, dtype=int))

    def test_subset(self):
        data = generate_dataset(20, rng=1)
        sub = data.subset([0, 5, 7])
        assert len(sub) == 3
        assert np.array_equal(sub.labels, data.labels[[0, 5, 7]])

    def test_load_synthetic_mnist_shapes(self):
        train, test = load_synthetic_mnist(num_train=40, num_test=20, seed=3)
        assert train.images.shape == (40, IMAGE_SIZE, IMAGE_SIZE)
        assert test.images.shape == (20, IMAGE_SIZE, IMAGE_SIZE)
        assert set(np.unique(train.labels)) <= set(range(NUM_CLASSES))

    def test_load_is_deterministic_in_seed(self):
        a_train, _ = load_synthetic_mnist(num_train=10, num_test=5, seed=7)
        b_train, _ = load_synthetic_mnist(num_train=10, num_test=5, seed=7)
        assert np.allclose(a_train.images, b_train.images)

    def test_train_and_test_are_independent_streams(self):
        _, test_small = load_synthetic_mnist(num_train=10, num_test=15, seed=7)
        _, test_large = load_synthetic_mnist(num_train=50, num_test=15, seed=7)
        assert np.allclose(test_small.images, test_large.images)

    def test_different_seeds_differ(self):
        a_train, _ = load_synthetic_mnist(num_train=10, num_test=5, seed=1)
        b_train, _ = load_synthetic_mnist(num_train=10, num_test=5, seed=2)
        assert not np.allclose(a_train.images, b_train.images)
