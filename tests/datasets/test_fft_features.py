"""Tests for the shifted-FFT feature pipeline."""

import numpy as np
import pytest

from repro.datasets import (
    FeatureConfig,
    FFTFeatureExtractor,
    center_crop,
    fft_crop_features,
    full_fft_features,
    generate_dataset,
    shifted_fft2,
)
from repro.exceptions import ShapeError


class TestShiftedFFT:
    def test_dc_component_is_centered(self):
        """A constant image concentrates all energy at the center after fftshift."""
        image = np.ones((8, 8))
        spectrum = shifted_fft2(image)
        center = np.unravel_index(np.argmax(np.abs(spectrum)), spectrum.shape)
        assert center == (4, 4)

    def test_batch_and_single_shapes(self):
        batch = np.random.default_rng(0).random((3, 8, 8))
        assert shifted_fft2(batch).shape == (3, 8, 8)
        assert shifted_fft2(batch[0]).shape == (8, 8)

    def test_rejects_bad_dims(self):
        with pytest.raises(ShapeError):
            shifted_fft2(np.zeros((2, 2, 2, 2)))

    def test_parseval_energy_preserved(self):
        image = np.random.default_rng(1).random((8, 8))
        spectrum = shifted_fft2(image)
        assert np.sum(np.abs(spectrum) ** 2) / 64 == pytest.approx(np.sum(image**2))


class TestCenterCrop:
    def test_crop_shape(self):
        spectrum = np.arange(64).reshape(8, 8)
        assert center_crop(spectrum, 4).shape == (4, 4)
        assert center_crop(np.stack([spectrum] * 2), 4).shape == (2, 4, 4)

    def test_crop_contains_center(self):
        image = np.ones((8, 8))
        spectrum = shifted_fft2(image)
        block = center_crop(spectrum, 2)
        assert np.abs(block).max() == pytest.approx(64.0)

    def test_rejects_invalid_crop(self):
        with pytest.raises(ShapeError):
            center_crop(np.zeros((8, 8)), 0)
        with pytest.raises(ShapeError):
            center_crop(np.zeros((8, 8)), 9)


class TestFeaturePipelines:
    def test_fft_crop_features_shape_and_dtype(self):
        data = generate_dataset(6, rng=0)
        features = fft_crop_features(data.images, crop=4)
        assert features.shape == (6, 16)
        assert features.dtype == np.complex128

    def test_normalization_bounds_magnitudes(self):
        data = generate_dataset(4, rng=1)
        normalized = fft_crop_features(data.images, crop=4, normalize=True)
        raw = fft_crop_features(data.images, crop=4, normalize=False)
        assert np.abs(normalized).max() <= 1.0 + 1e-9
        assert np.allclose(raw, normalized * 28 * 28)

    def test_full_fft_features_shape(self):
        data = generate_dataset(3, rng=2)
        assert full_fft_features(data.images).shape == (3, 784)

    def test_single_image_input(self):
        data = generate_dataset(1, rng=3)
        assert fft_crop_features(data.images[0], crop=4).shape == (16,)
        assert full_fft_features(data.images[0]).shape == (784,)

    def test_features_distinguish_classes(self):
        """FFT-crop features must carry class information (not collapse to a constant)."""
        data = generate_dataset(40, rng=4)
        features = fft_crop_features(data.images, crop=4)
        class_means = [
            np.abs(features[data.labels == c]).mean(axis=0)
            for c in np.unique(data.labels)
        ]
        spread = np.std(np.stack(class_means), axis=0).sum()
        assert spread > 0.01

    def test_extractor_object(self):
        extractor = FFTFeatureExtractor(FeatureConfig(crop=3))
        assert extractor.config.num_features == 9
        data = generate_dataset(5, rng=5)
        features, labels = extractor.transform_dataset(data)
        assert features.shape == (5, 9)
        assert np.array_equal(labels, data.labels)
