"""The column-sweep kernel registry: conformance, selection and blocking.

Every registered kernel is held to the same contract on the same packed
:class:`~repro.arrays.ColumnProgram`: host kernels (``looped``, ``fused``,
``numba``) and the strict mock device must match the reference loop **bit
for bit**; a real CuPy device, when present, to ``allclose`` at fixed
seeds.  Kernels whose dependencies are missing (numba, CuPy) are *skipped*,
never failed — the registry's whole point is graceful degradation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import (
    HOST_BACKEND,
    SWEEP_KERNEL_ENV,
    FusedSweepKernel,
    apply_column_sweep,
    available_sweep_kernels,
    get_array_backend,
    get_sweep_kernel,
    register_sweep_kernel,
    select_sweep_kernel,
    sweep_kernel_names,
    to_host,
    use_array_backend,
)
from repro.arrays.sweep import _HOST_BLOCK_ELEMENTS
from repro.mesh.mesh import MZIMesh
from repro.utils import random_unitary
from repro.utils.rng import spawn_rngs
from repro.variation.models import UncertaintyModel
from repro.variation.sampler import sample_mesh_perturbation_batch
from repro.exceptions import ConfigurationError


def _sweep_inputs(n: int, batch: int, backend, scheme: str = "clements", seed: int = 7):
    """Packed program + column-sorted components + identity work batch."""
    mesh = MZIMesh.from_unitary(random_unitary(n, rng=seed), scheme=scheme)
    perturbation = sample_mesh_perturbation_batch(
        mesh, UncertaintyModel.both(0.02), spawn_rngs(seed + 1, batch)
    )
    components, _ = mesh._blocks_and_phases(perturbation, backend)
    program = mesh.column_program(backend)
    sorted_components = tuple(c[..., program.perm] for c in components)
    xp = backend.xp
    eye = xp.broadcast_to(
        xp.eye(n, dtype=xp.complex128), (batch, n, n)
    )
    return program, sorted_components, eye


def _kernel_backend(name: str):
    """The array backend a kernel should be exercised on, or None to skip."""
    kernel = get_sweep_kernel(name)
    if not kernel.available():
        pytest.skip(f"sweep kernel {name!r} is unavailable (dependency missing)")
    if kernel.supports(HOST_BACKEND):
        return HOST_BACKEND
    from repro.arrays import available_array_backends

    for candidate in available_array_backends():
        backend = get_array_backend(candidate)
        if kernel.supports(backend):
            return backend
    pytest.skip(f"no array backend in this environment supports kernel {name!r}")


class TestRegistry:
    def test_reference_kernels_registered(self):
        names = sweep_kernel_names()
        for expected in ("looped", "fused", "numba", "cupy_raw"):
            assert expected in names

    def test_available_kernels_always_include_reference(self):
        available = available_sweep_kernels(HOST_BACKEND)
        assert "looped" in available
        assert "fused" in available

    def test_get_unknown_kernel_fails_loudly(self):
        with pytest.raises(ConfigurationError):
            get_sweep_kernel("no-such-kernel")

    def test_register_requires_name(self):
        class Nameless(FusedSweepKernel):
            name = ""

        with pytest.raises(ConfigurationError):
            register_sweep_kernel(Nameless())

    def test_env_override_selects_kernel(self, monkeypatch):
        monkeypatch.setenv(SWEEP_KERNEL_ENV, "looped")
        assert select_sweep_kernel(HOST_BACKEND).name == "looped"

    def test_env_override_unknown_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(SWEEP_KERNEL_ENV, "no-such-kernel")
        with pytest.raises(ConfigurationError):
            select_sweep_kernel(HOST_BACKEND)

    def test_env_override_unavailable_fails_loudly(self, monkeypatch):
        kernel = get_sweep_kernel("numba")
        if kernel.available():  # pragma: no cover - numba-equipped machines
            pytest.skip("numba installed; unavailability cannot be simulated")
        monkeypatch.setenv(SWEEP_KERNEL_ENV, "numba")
        with pytest.raises(ConfigurationError):
            select_sweep_kernel(HOST_BACKEND)

    def test_env_override_unsupported_backend_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(SWEEP_KERNEL_ENV, "fused")
        mock = get_array_backend("mock_device")
        kernel = get_sweep_kernel("fused")
        if kernel.supports(mock):
            monkeypatch.setenv(SWEEP_KERNEL_ENV, "cupy_raw")
            if get_sweep_kernel("cupy_raw").available():  # pragma: no cover
                pytest.skip("CuPy installed; unsupported case needs a host-only env")
            with pytest.raises(ConfigurationError):
                select_sweep_kernel(mock)
        else:  # pragma: no cover - depends on fused's backend support
            with pytest.raises(ConfigurationError):
                select_sweep_kernel(mock)

    def test_default_selection_prefers_fused_on_host(self):
        selected = select_sweep_kernel(HOST_BACKEND)
        if get_sweep_kernel("numba").available():  # pragma: no cover
            assert selected.name == "numba"
        else:
            assert selected.name == "fused"

    def test_apply_accepts_kernel_instance(self):
        backend = HOST_BACKEND
        program, components, eye = _sweep_inputs(6, 3, backend)
        by_name = np.asarray(eye).copy()
        by_instance = np.asarray(eye).copy()
        apply_column_sweep(backend, by_name, components, program, kernel="fused")
        apply_column_sweep(
            backend, by_instance, components, program, kernel=FusedSweepKernel()
        )
        np.testing.assert_array_equal(by_instance, by_name)


@pytest.mark.parametrize("name", sorted(sweep_kernel_names()))
@pytest.mark.parametrize(
    "n,batch,scheme",
    [(6, 4, "clements"), (6, 4, "reck"), (8, 9, "clements")],
)
class TestKernelConformance:
    """Every kernel against the looped host reference on the same inputs."""

    def test_matches_reference(self, name, n, batch, scheme):
        backend = _kernel_backend(name)
        host_program, host_components, host_eye = _sweep_inputs(
            n, batch, HOST_BACKEND, scheme=scheme
        )
        reference = np.asarray(host_eye).copy()
        apply_column_sweep(
            HOST_BACKEND, reference, host_components, host_program, kernel="looped"
        )
        if backend is HOST_BACKEND:
            result = np.asarray(host_eye).copy()
            apply_column_sweep(backend, result, host_components, host_program, kernel=name)
        else:
            with use_array_backend(backend):
                program, components, eye = _sweep_inputs(n, batch, backend, scheme=scheme)
                result = backend.xp.empty_like(eye)
                result[...] = eye
                apply_column_sweep(backend, result, components, program, kernel=name)
            result = to_host(result)
        if backend.is_host or backend.name == "mock_device":
            np.testing.assert_array_equal(result, reference)
        else:  # pragma: no cover - requires a CUDA device
            np.testing.assert_allclose(result, reference, rtol=1e-10, atol=1e-12)


class TestFusedBlocking:
    """The fused kernel's internal cache blocking is a pure perf detail."""

    def test_blocked_path_bit_identical_to_looped(self):
        n = 16
        block = max(1, _HOST_BLOCK_ELEMENTS // (n * n))
        for batch in (block + 1, 3 * block + 7, 1):
            program, components, eye = _sweep_inputs(n, batch, HOST_BACKEND, seed=batch)
            looped = np.asarray(eye).copy()
            fused = np.asarray(eye).copy()
            apply_column_sweep(HOST_BACKEND, looped, components, program, kernel="looped")
            apply_column_sweep(HOST_BACKEND, fused, components, program, kernel="fused")
            np.testing.assert_array_equal(fused, looped)

    def test_single_matrix_lead_bit_identical(self):
        program, components, eye = _sweep_inputs(6, 1, HOST_BACKEND)
        single_components = tuple(np.asarray(c)[0] for c in components)
        looped = np.asarray(eye)[0].copy()
        fused = looped.copy()
        apply_column_sweep(HOST_BACKEND, looped, single_components, program, kernel="looped")
        apply_column_sweep(HOST_BACKEND, fused, single_components, program, kernel="fused")
        np.testing.assert_array_equal(fused, looped)

    def test_internal_blocking_flags(self):
        assert get_sweep_kernel("fused").blocks_internally
        assert get_sweep_kernel("numba").blocks_internally
        assert get_sweep_kernel("cupy_raw").blocks_internally
        assert not get_sweep_kernel("looped").blocks_internally
