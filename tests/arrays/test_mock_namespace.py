"""Strictness contract of the mock device namespace.

The mock backend exists to make host/device hygiene violations *loud* on
CPU-only CI: a stray ``np.`` call on a device array, or a host array leaking
into a device kernel, must raise instead of silently computing on the host.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import MockArray, get_array_backend, to_host

mock = get_array_backend("mock_device")
xp = mock.xp


@pytest.fixture
def device() -> MockArray:
    return xp.asarray(np.linspace(-1.0, 1.0, 6))


class TestTripwires:
    def test_np_asarray_raises(self, device):
        with pytest.raises(TypeError, match="implicit host transfer"):
            np.asarray(device)

    def test_np_ufunc_raises(self, device):
        with pytest.raises(TypeError):
            np.exp(device)

    def test_np_matmul_raises(self, device):
        with pytest.raises(TypeError):
            np.matmul(device, device)

    def test_host_operand_in_namespace_call_raises(self, device):
        with pytest.raises(TypeError, match="host numpy array"):
            xp.multiply(device, np.ones(6))

    def test_host_operand_in_operator_raises(self, device):
        with pytest.raises(TypeError, match="host numpy array"):
            device + np.ones(6)

    def test_scalars_are_fine(self, device):
        np.testing.assert_array_equal(to_host(2.0 * device), 2.0 * to_host(device))
        np.testing.assert_array_equal(to_host(device / 2), to_host(device) / 2)

    def test_explicit_transfer_doors(self, device):
        host = np.arange(3.0)
        wrapped = xp.asarray(host)
        assert isinstance(wrapped, MockArray)
        np.testing.assert_array_equal(to_host(wrapped), host)


class TestArraySemantics:
    def test_views_share_memory(self, device):
        view = device[1:4]
        view[...] = 0.0
        assert to_host(device)[1:4].tolist() == [0.0, 0.0, 0.0]

    def test_real_imag_setters(self):
        out = xp.empty((3,), dtype=xp.complex128)
        out.real = xp.asarray(np.array([1.0, 2.0, 3.0]))
        out.imag = xp.asarray(np.array([4.0, 5.0, 6.0]))
        np.testing.assert_array_equal(to_host(out), np.array([1 + 4j, 2 + 5j, 3 + 6j]))

    def test_inplace_operators_mutate_backing(self, device):
        before = to_host(device).copy()
        device *= 3.0
        np.testing.assert_array_equal(to_host(device), before * 3.0)

    def test_method_delegation(self, device):
        assert bool((device < 2.0).all())
        assert device.copy() is not device
        np.testing.assert_array_equal(to_host(device.copy()), to_host(device))
        assert device.reshape(2, 3).shape == (2, 3)

    def test_comparison_returns_device_bool(self, device):
        mask = device > 0
        assert isinstance(mask, MockArray)
        assert mask.dtype == np.bool_

    def test_setitem_accepts_host_values(self):
        # CuPy's __setitem__ also accepts numpy values (explicit elementwise
        # transfer), so the mock mirrors that.
        buffer = xp.empty((4,), dtype=xp.float64)
        buffer[...] = np.arange(4.0)
        np.testing.assert_array_equal(to_host(buffer), np.arange(4.0))

    def test_dtype_kind_visible(self, device):
        assert device.dtype.kind == "f"
        assert xp.asarray(np.zeros(2, dtype=complex)).dtype.kind == "c"

    def test_namespace_constants_pass_through(self):
        assert xp.float64 is np.float64
        assert xp.complex128 is np.complex128
        assert xp.pi == np.pi
