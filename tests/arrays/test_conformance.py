"""Backend conformance: the numerics core against the array seam.

Every parametrized case runs a kernel/sampler/evaluator once on the NumPy
reference backend and once on a device backend, and compares the results.
For the strict mock backend the comparison is **exact** (its arithmetic is
NumPy's — any difference means a seam bug); a real CuPy device, when
present, is held to the documented ``allclose``-at-fixed-seeds contract.

Because the mock namespace refuses implicit host transfers, merely *running*
these cases under it proves the hot paths are free of stray ``np.`` calls
and host/device mixing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import available_array_backends, get_array_backend, to_host, use_array_backend
from repro.execution import GpuBackend
from repro.mesh.mesh import MZIMesh
from repro.onn.inference import NetworkAccuracyBatchTrial, monte_carlo_accuracy
from repro.onn.spnn import SPNN, SPNNArchitecture
from repro.training.workspace import VectorizedWorkspace, reset_process_workspace
from repro.utils import random_unitary
from repro.utils.rng import spawn_rngs
from repro.variation.models import UncertaintyModel
from repro.variation.sampler import (
    sample_layer_perturbation_batch,
    sample_mesh_perturbation_batch,
    sample_network_perturbation_batch,
)

#: Device backends to hold against the NumPy reference.  The mock backend
#: must match bit for bit; CuPy (exercised only on GPU machines) to
#: allclose at the shared fixed seeds.
DEVICE_BACKENDS = [
    name for name in ("mock_device", "cupy") if name in available_array_backends()
]


def _assert_matches(backend_name: str, device_result, host_result) -> None:
    device_result = to_host(device_result)
    if backend_name == "mock_device":
        np.testing.assert_array_equal(device_result, host_result)
    else:  # pragma: no cover - requires a CUDA device
        np.testing.assert_allclose(device_result, host_result, rtol=1e-10, atol=1e-12)


@pytest.fixture
def mesh() -> MZIMesh:
    return MZIMesh.from_unitary(random_unitary(6, rng=3))


@pytest.fixture
def spnn() -> SPNN:
    gen = np.random.default_rng(21)
    architecture = SPNNArchitecture(layer_dims=(6, 6, 4))
    weights = [
        (gen.standard_normal(shape) + 1j * gen.standard_normal(shape)) / 3.0
        for shape in architecture.weight_shapes()
    ]
    return SPNN(weights, architecture)


@pytest.fixture
def eval_set():
    gen = np.random.default_rng(22)
    features = (gen.standard_normal((20, 6)) + 1j * gen.standard_normal((20, 6))) / 2.0
    labels = gen.integers(0, 4, 20)
    return features, labels


MODEL = UncertaintyModel(sigma_phs=0.01, sigma_bes=0.008)


@pytest.mark.parametrize("backend_name", DEVICE_BACKENDS)
class TestKernelConformance:
    def test_mesh_sampler_batch(self, backend_name, mesh):
        host = sample_mesh_perturbation_batch(mesh, MODEL, spawn_rngs(5, 4))
        with use_array_backend(backend_name):
            device = sample_mesh_perturbation_batch(mesh, MODEL, spawn_rngs(5, 4))
        for field in host._FIELDS:
            host_value = getattr(host, field)
            device_value = getattr(device, field)
            if host_value is None:
                assert device_value is None
            else:
                _assert_matches(backend_name, device_value, host_value)

    def test_mesh_matrix_batch(self, backend_name, mesh):
        host_batch = sample_mesh_perturbation_batch(mesh, MODEL, spawn_rngs(5, 4))
        host_matrices = mesh.matrix_batch(host_batch)
        with use_array_backend(backend_name):
            device_batch = sample_mesh_perturbation_batch(mesh, MODEL, spawn_rngs(5, 4))
            device_matrices = mesh.matrix_batch(device_batch)
        _assert_matches(backend_name, device_matrices, host_matrices)

    def test_mesh_matrix_batch_nominal(self, backend_name, mesh):
        host_matrices = mesh.matrix_batch(None, batch_size=3)
        with use_array_backend(backend_name):
            device_matrices = mesh.matrix_batch(None, batch_size=3)
        _assert_matches(backend_name, device_matrices, host_matrices)

    def test_layer_matrix_batch(self, backend_name, spnn):
        layer = spnn.photonic_layers[0]
        host_batch = sample_layer_perturbation_batch(layer, MODEL, spawn_rngs(8, 3))
        host_matrices = layer.matrix_batch(host_batch)
        with use_array_backend(backend_name):
            device_batch = sample_layer_perturbation_batch(layer, MODEL, spawn_rngs(8, 3))
            device_matrices = layer.matrix_batch(device_batch)
        _assert_matches(backend_name, device_matrices, host_matrices)

    def test_forward_hardware_batch(self, backend_name, spnn, eval_set):
        features, _labels = eval_set
        host_batch = sample_network_perturbation_batch(
            spnn.photonic_layers, MODEL, spawn_rngs(11, 3)
        )
        host_logits = spnn.forward_hardware_batch(features, host_batch)
        with use_array_backend(backend_name):
            device_batch = sample_network_perturbation_batch(
                spnn.photonic_layers, MODEL, spawn_rngs(11, 3)
            )
            device_logits = spnn.forward_hardware_batch(features, device_batch)
        _assert_matches(backend_name, device_logits, host_logits)

    def test_accuracy_batch(self, backend_name, spnn, eval_set):
        features, labels = eval_set
        host_batch = sample_network_perturbation_batch(
            spnn.photonic_layers, MODEL, spawn_rngs(12, 4)
        )
        host_accuracy = spnn.accuracy_batch(features, labels, host_batch)
        with use_array_backend(backend_name):
            device_batch = sample_network_perturbation_batch(
                spnn.photonic_layers, MODEL, spawn_rngs(12, 4)
            )
            device_accuracy = spnn.accuracy_batch(features, labels, device_batch)
        _assert_matches(backend_name, device_accuracy, host_accuracy)

    def test_accuracy_batch_with_device_workspace(self, backend_name, spnn, eval_set):
        features, labels = eval_set
        host_batch = sample_network_perturbation_batch(
            spnn.photonic_layers, MODEL, spawn_rngs(13, 4)
        )
        host_accuracy = spnn.accuracy_batch(features, labels, host_batch)
        with use_array_backend(backend_name) as backend:
            workspace = VectorizedWorkspace(backend)
            device_batch = sample_network_perturbation_batch(
                spnn.photonic_layers, MODEL, spawn_rngs(13, 4), workspace=workspace
            )
            device_accuracy = spnn.accuracy_batch(
                features, labels, device_batch, workspace=workspace
            )
        _assert_matches(backend_name, device_accuracy, host_accuracy)


@pytest.mark.parametrize("backend_name", DEVICE_BACKENDS)
class TestEngineConformance:
    def test_monte_carlo_engine_end_to_end(self, backend_name, spnn, eval_set):
        """The full engine behind ``--device gpu`` vs. the serial CPU run."""
        features, labels = eval_set
        serial = monte_carlo_accuracy(spnn, features, labels, MODEL, iterations=16, rng=7)
        device = monte_carlo_accuracy(
            spnn,
            features,
            labels,
            MODEL,
            iterations=16,
            rng=7,
            backend=GpuBackend(array_backend=backend_name),
        )
        _assert_matches(backend_name, device, serial)

    def test_device_engine_with_workspace_and_chunking(self, backend_name, spnn, eval_set):
        features, labels = eval_set
        reset_process_workspace()
        try:
            serial = monte_carlo_accuracy(
                spnn, features, labels, MODEL, iterations=12, rng=3
            )
            device = monte_carlo_accuracy(
                spnn,
                features,
                labels,
                MODEL,
                iterations=12,
                rng=3,
                chunk_size=5,
                use_workspace=True,
                backend=GpuBackend(array_backend=backend_name),
            )
            _assert_matches(backend_name, device, serial)
        finally:
            reset_process_workspace()

    def test_scalar_looped_path_stays_host_under_device_backend(
        self, backend_name, spnn, eval_set
    ):
        """``vectorized=False`` trials are host-only by design and must not
        pick up the active device namespace (their mesh evaluators are
        host-only, so mixing would crash)."""
        features, labels = eval_set
        serial = monte_carlo_accuracy(
            spnn, features, labels, MODEL, iterations=6, rng=9, vectorized=False
        )
        device = monte_carlo_accuracy(
            spnn,
            features,
            labels,
            MODEL,
            iterations=6,
            rng=9,
            vectorized=False,
            backend=GpuBackend(array_backend=backend_name),
        )
        np.testing.assert_array_equal(device, serial)

    def test_trial_returns_device_array_and_engine_rehosts(
        self, backend_name, spnn, eval_set
    ):
        features, labels = eval_set
        trial = NetworkAccuracyBatchTrial(
            spnn=spnn, features=features, labels=labels, model=MODEL
        )
        with use_array_backend(backend_name) as backend:
            result = trial(spawn_rngs(1, 3))
            assert backend.owns(result)


class TestWorkspaceFusion:
    """The fused matrix_batch path (host): same values, arena-backed buffers."""

    def test_fused_matrices_bit_identical(self, spnn):
        layer = spnn.photonic_layers[0]
        batch = sample_layer_perturbation_batch(layer, MODEL, spawn_rngs(31, 4))
        plain = layer.matrix_batch(batch)
        workspace = VectorizedWorkspace()
        fused = layer.matrix_batch(batch, workspace=workspace, workspace_key="t")
        np.testing.assert_array_equal(plain, fused)
        assert workspace.num_buffers > 0

    def test_fused_buffers_reused_across_calls(self, spnn):
        layer = spnn.photonic_layers[0]
        workspace = VectorizedWorkspace()
        batch = sample_layer_perturbation_batch(layer, MODEL, spawn_rngs(32, 4))
        first = layer.matrix_batch(batch, workspace=workspace, workspace_key="t")
        buffers_after_first = workspace.num_buffers
        second = layer.matrix_batch(batch, workspace=workspace, workspace_key="t")
        assert workspace.num_buffers == buffers_after_first
        assert np.shares_memory(first, second)  # same arena backing handed back

    def test_fused_partial_batch_reuses_capacity(self, spnn):
        layer = spnn.photonic_layers[0]
        workspace = VectorizedWorkspace()
        full = sample_layer_perturbation_batch(layer, MODEL, spawn_rngs(33, 4))
        layer.matrix_batch(full, workspace=workspace, workspace_key="t")
        nbytes_full = workspace.nbytes
        tail = sample_layer_perturbation_batch(layer, MODEL, spawn_rngs(34, 2))
        plain = layer.matrix_batch(tail)
        fused = layer.matrix_batch(tail, workspace=workspace, workspace_key="t")
        np.testing.assert_array_equal(plain, fused)
        assert workspace.nbytes == nbytes_full  # no reallocation for the tail

    def test_network_level_fusion_bit_identical(self, spnn, eval_set):
        features, labels = eval_set
        batch = sample_network_perturbation_batch(
            spnn.photonic_layers, MODEL, spawn_rngs(35, 3)
        )
        plain = spnn.accuracy_batch(features, labels, batch)
        workspace = VectorizedWorkspace()
        fused = spnn.accuracy_batch(features, labels, batch, workspace=workspace)
        np.testing.assert_array_equal(plain, fused)
