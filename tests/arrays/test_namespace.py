"""Registry, active-context and transfer semantics of the array seam."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import (
    HOST_BACKEND,
    MockArray,
    active_array_backend,
    array_backend_names,
    available_array_backends,
    backend_of,
    get_array_backend,
    get_namespace,
    to_host,
    use_array_backend,
)
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_numpy_is_default_and_host(self):
        backend = get_array_backend(None)
        assert backend is HOST_BACKEND
        assert backend.is_host
        assert backend.xp is np

    def test_known_names_registered(self):
        names = array_backend_names()
        assert "numpy" in names
        assert "mock_device" in names
        assert "cupy" in names

    def test_mock_device_always_available(self):
        assert "mock_device" in available_array_backends()
        assert "numpy" in available_array_backends()

    def test_instances_are_singletons(self):
        assert get_array_backend("mock_device") is get_array_backend("mock_device")

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown array backend"):
            get_array_backend("tpu")

    def test_instance_passthrough(self):
        backend = get_array_backend("mock_device")
        assert get_array_backend(backend) is backend


class TestActiveContext:
    def test_default_is_host(self):
        assert active_array_backend() is HOST_BACKEND

    def test_context_activates_and_restores(self):
        mock = get_array_backend("mock_device")
        with use_array_backend("mock_device") as active:
            assert active is mock
            assert active_array_backend() is mock
        assert active_array_backend() is HOST_BACKEND

    def test_context_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_array_backend("mock_device"):
                raise RuntimeError("boom")
        assert active_array_backend() is HOST_BACKEND

    def test_nested_contexts(self):
        with use_array_backend("mock_device"):
            with use_array_backend(None):
                assert active_array_backend() is HOST_BACKEND
            assert active_array_backend().name == "mock_device"


class TestOwnershipAndTransfers:
    def test_backend_of_host_arrays(self):
        assert backend_of(np.zeros(3), None, 1.5) is HOST_BACKEND
        assert get_namespace(np.zeros(3)) is np

    def test_backend_of_mock_arrays(self):
        mock = get_array_backend("mock_device")
        device = mock.asarray(np.arange(3.0))
        assert backend_of(device) is mock
        assert backend_of(np.zeros(2), device) is mock

    def test_to_host_round_trip(self):
        mock = get_array_backend("mock_device")
        host = np.linspace(0.0, 1.0, 7)
        assert to_host(host) is host or np.array_equal(to_host(host), host)
        device = mock.asarray(host)
        back = to_host(device)
        assert isinstance(back, np.ndarray)
        np.testing.assert_array_equal(back, host)

    def test_asarray_cached_identity(self):
        mock = get_array_backend("mock_device")
        mock.clear_cache()
        host = np.arange(5.0)
        first = mock.asarray_cached(host)
        second = mock.asarray_cached(host)
        assert first is second
        # A different object with the same id is impossible while `host`
        # lives; a new array gets its own transfer.
        other = np.arange(5.0)
        assert mock.asarray_cached(other) is not first
        mock.clear_cache()

    def test_host_backend_never_copies(self):
        host = np.arange(4.0)
        assert HOST_BACKEND.asarray_cached(host) is host
        assert HOST_BACKEND.to_host(host) is host


class TestRngShim:
    def test_host_rows_bit_identical_to_plain_draws(self):
        gens = [np.random.default_rng(seed) for seed in (1, 2, 3)]
        rows = HOST_BACKEND.standard_normal_rows(gens, 6)
        expected = np.stack(
            [np.random.default_rng(seed).standard_normal(6) for seed in (1, 2, 3)]
        )
        np.testing.assert_array_equal(rows, expected)

    def test_device_rows_same_values_and_stream_consumption(self):
        mock = get_array_backend("mock_device")
        gens = [np.random.default_rng(seed) for seed in (4, 5)]
        rows = mock.standard_normal_rows(gens, 5)
        assert isinstance(rows, MockArray)
        expected = np.stack(
            [np.random.default_rng(seed).standard_normal(5) for seed in (4, 5)]
        )
        np.testing.assert_array_equal(to_host(rows), expected)
        # The generators were consumed exactly as on the host path.
        host_next = [np.random.default_rng(seed) for seed in (4, 5)]
        for gen in host_next:
            gen.standard_normal(5)
        np.testing.assert_array_equal(
            np.stack([gen.standard_normal(2) for gen in gens]),
            np.stack([gen.standard_normal(2) for gen in host_next]),
        )

    def test_out_buffer_is_filled(self):
        gens = [np.random.default_rng(9)]
        out = np.empty((1, 4))
        result = HOST_BACKEND.standard_normal_rows(gens, 4, out=out)
        assert result is out
        np.testing.assert_array_equal(out[0], np.random.default_rng(9).standard_normal(4))
