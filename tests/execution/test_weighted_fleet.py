"""Throughput-weighted fleet scheduling: bit-identity and dedup guarantees.

The weighted scheduler may assign chunks unevenly and even dispatch a
straggler's tail chunk twice, but reassembly stays task-ordered with
first-result-wins dedup — so results must be *exactly* what the serial
backend produces, for any fleet size and any skew.  These tests slow
workers artificially via per-worker ``REPRO_SYNTH_SLEEP`` overlays
(``local_fleet(worker_env=...)``).
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.execution import FleetServer, local_fleet
from repro.execution.fleet.server import FLEET_SCHEDULING_ENV
from repro.execution.fleet.synthetic import SYNTH_SLEEP_ENV, SleepChunkEvaluator

_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not _FORK_AVAILABLE,
    reason="fleet tests fork local workers (test-module evaluators must resolve)",
)


def env_slow_square(task):
    """Deterministic per-task result, per-worker sleep from the overlay env."""
    time.sleep(float(os.environ.get(SYNTH_SLEEP_ENV, "0") or "0"))
    index, values = task
    return index, [v * v for v in values]


def _square_tasks(count: int):
    return [(i, list(range(i, i + 4))) for i in range(count)]


class TestWeightedBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial_with_a_slowed_worker(self, workers):
        tasks = _square_tasks(10)
        expected = [env_slow_square(task) for task in tasks]
        overlay = [None] * workers
        overlay[0] = {SYNTH_SLEEP_ENV: "0.05"}
        with local_fleet(workers=workers, worker_env=overlay) as fleet:
            assert fleet.server.scheduling == "weighted"
            # Twice: once cold (unmeasured links), once with learned rates.
            assert fleet.map(env_slow_square, tasks) == expected
            assert fleet.map(env_slow_square, tasks) == expected

    def test_fifo_mode_matches_serial(self):
        tasks = _square_tasks(8)
        expected = [env_slow_square(task) for task in tasks]
        with local_fleet(workers=2, scheduling="fifo") as fleet:
            assert fleet.server.scheduling == "fifo"
            assert fleet.map(env_slow_square, tasks) == expected
            assert fleet.request_log[-1]["duplicates"] == 0

    def test_scheduling_env_sets_the_default(self, monkeypatch):
        monkeypatch.setenv(FLEET_SCHEDULING_ENV, "fifo")
        with local_fleet(workers=1) as fleet:
            assert fleet.server.scheduling == "fifo"

    def test_invalid_scheduling_is_rejected(self):
        with pytest.raises(ValueError, match=FLEET_SCHEDULING_ENV):
            FleetServer(scheduling="fastest")

    def test_worker_env_length_must_match_workers(self):
        with pytest.raises(ValueError, match="worker_env"):
            with local_fleet(workers=2, worker_env=[{SYNTH_SLEEP_ENV: "1"}]):
                pass  # pragma: no cover


class TestDuplicateDispatch:
    def test_straggler_tail_chunk_is_duplicated_and_deduped(self):
        """On a cold fleet both (unmeasured) links claim a chunk; the fast
        link drains the queue, then re-dispatches the straggler's overdue
        in-flight chunk — first result wins, reassembly stays exact.

        With *accurately* learned rates the slow link would abstain and
        never hold a chunk; duplication is precisely the safety net for
        the cold/misestimated case, so that is what we stage."""
        evaluator = SleepChunkEvaluator(default_seconds=0.05)
        tasks = [("chunk", i) for i in range(6)]
        expected = [("synth", task) for task in tasks]
        overlay = [{SYNTH_SLEEP_ENV: "1.5"}, {SYNTH_SLEEP_ENV: "0.05"}]
        with local_fleet(workers=2, worker_env=overlay) as fleet:
            start = time.monotonic()
            assert fleet.map(evaluator, tasks) == expected
            elapsed = time.monotonic() - start
            stats = fleet.request_log[-1]
            assert stats["duplicates"] >= 1, (
                f"fast link never re-dispatched the straggler's chunk: {stats}"
            )
            # The duplicate is what keeps the request from waiting out the
            # straggler's full 1.5s sleep.
            assert elapsed < 1.4, elapsed
            measured = [
                rate for rate in fleet.server.worker_rates().values() if rate is not None
            ]
            assert measured, "the fast link must have a measured rate"

    def test_duplicate_results_do_not_corrupt_order(self):
        """Even when duplicates land, results come back in task order."""
        evaluator = SleepChunkEvaluator(default_seconds=0.02)
        overlay = [{SYNTH_SLEEP_ENV: "0.5"}, {SYNTH_SLEEP_ENV: "0.02"}]
        tasks = [("ordered", i) for i in range(9)]
        with local_fleet(workers=2, worker_env=overlay) as fleet:
            fleet.map(evaluator, [("warm", 0), ("warm", 1)])
            results = fleet.map(evaluator, tasks)
        assert results == [("synth", task) for task in tasks]
