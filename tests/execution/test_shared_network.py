"""Shared-memory hosting of compiled networks (mesh parameter arrays).

The contract: a :class:`SharedNetwork` handle pickles to a fraction of the
compiled SPNN's payload, workers rebuild the network bit-identically from
the hosted parameter arrays, and Monte Carlo results are invariant to the
hosting and to the worker count.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.execution import MultiprocessBackend, SerialBackend
from repro.execution.shared import (
    SharedNetwork,
    resolve_network,
    shared_memory_available,
    shared_network,
)
from repro.mesh.svd_layer import PhotonicLinearLayer
from repro.onn.inference import NetworkAccuracyBatchTrial, monte_carlo_accuracy
from repro.onn.spnn import SPNN, SPNNArchitecture
from repro.variation.models import UncertaintyModel

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory unavailable"
)


@pytest.fixture
def spnn() -> SPNN:
    gen = np.random.default_rng(17)
    architecture = SPNNArchitecture(layer_dims=(8, 8, 6))
    weights = [
        (gen.standard_normal(shape) + 1j * gen.standard_normal(shape)) / 3.0
        for shape in architecture.weight_shapes()
    ]
    return SPNN(weights, architecture)


@pytest.fixture
def eval_set():
    gen = np.random.default_rng(18)
    features = (gen.standard_normal((24, 8)) + 1j * gen.standard_normal((24, 8))) / 2.0
    labels = gen.integers(0, 6, 24)
    return features, labels


MODEL = UncertaintyModel(sigma_phs=0.012, sigma_bes=0.01)


class TestLayerRoundTrip:
    def test_tuned_parameters_rebuild_bit_identical(self, spnn):
        for layer in spnn.photonic_layers:
            rebuilt = PhotonicLinearLayer.from_tuned_parameters(
                layer.weight, layer.scheme, layer.gain, layer.tuned_parameters()
            )
            np.testing.assert_array_equal(rebuilt.matrix(None), layer.matrix(None))
            np.testing.assert_array_equal(rebuilt.weight, layer.weight)
            assert rebuilt.gain == layer.gain
            assert rebuilt.num_mzis == layer.num_mzis

    def test_rebuilt_layer_warm_recompile_declines(self, spnn):
        layer = spnn.photonic_layers[0]
        rebuilt = PhotonicLinearLayer.from_tuned_parameters(
            layer.weight, layer.scheme, layer.gain, layer.tuned_parameters()
        )
        # No warm-start basis travels with the parameters; the rebuilt layer
        # must decline (callers fall back to an exact recompile).
        assert rebuilt.retune_from_weight(layer.weight) is False


class TestSharedNetworkHandle:
    def test_owner_resolves_to_original(self, spnn):
        handle = SharedNetwork.create(spnn)
        try:
            assert resolve_network(handle) is spnn
            assert resolve_network(spnn) is spnn
        finally:
            handle.close()
            handle.unlink()

    def test_pickled_handle_rebuilds_bit_identical(self, spnn):
        handle = SharedNetwork.create(spnn)
        try:
            rebuilt = resolve_network(pickle.loads(pickle.dumps(handle)))
            assert rebuilt is not spnn
            for ours, theirs in zip(spnn.photonic_layers, rebuilt.photonic_layers):
                np.testing.assert_array_equal(theirs.matrix(None), ours.matrix(None))
            for ours, theirs in zip(spnn.weights, rebuilt.weights):
                np.testing.assert_array_equal(theirs, ours)
            assert rebuilt.architecture == spnn.architecture
        finally:
            handle.close()
            handle.unlink()

    def test_rebuild_cached_per_process(self, spnn):
        handle = SharedNetwork.create(spnn)
        try:
            blob = pickle.dumps(handle)
            first = resolve_network(pickle.loads(blob))
            second = resolve_network(pickle.loads(blob))
            assert first is second
        finally:
            handle.close()
            handle.unlink()

    def test_payload_shrinks(self, spnn, eval_set):
        features, labels = eval_set
        full_trial = NetworkAccuracyBatchTrial(
            spnn=spnn, features=features, labels=labels, model=MODEL
        )
        handle = SharedNetwork.create(spnn)
        try:
            shared_trial = NetworkAccuracyBatchTrial(
                spnn=handle, features=features, labels=labels, model=MODEL
            )
            full = len(pickle.dumps(full_trial))
            shared = len(pickle.dumps(shared_trial))
            # The hosted payload carries segment names + scalars instead of
            # compiled meshes; anything less than half is a regression.
            assert shared < full / 2
        finally:
            handle.close()
            handle.unlink()

    def test_uncompiled_network_rejected(self, spnn):
        uncompiled = SPNN(spnn.weights, spnn.architecture, compile_hardware=False)
        with pytest.raises(ValueError, match="compiled"):
            SharedNetwork.create(uncompiled)


class TestHostingContext:
    def test_serial_backend_passes_through(self, spnn):
        with shared_network(SerialBackend(), spnn) as network:
            assert network is spnn

    def test_sharding_backend_hosts(self, spnn):
        with shared_network(MultiprocessBackend(workers=2), spnn) as network:
            assert isinstance(network, SharedNetwork)
            assert resolve_network(network) is spnn


class TestMonteCarloInvariance:
    def test_shared_network_bit_identical_across_workers(self, spnn, eval_set):
        features, labels = eval_set
        reference = monte_carlo_accuracy(
            spnn, features, labels, MODEL, iterations=10, rng=5
        )
        handle = SharedNetwork.create(spnn)
        try:
            for workers in (1, 2):
                samples = monte_carlo_accuracy(
                    pickle.loads(pickle.dumps(handle)),
                    features,
                    labels,
                    MODEL,
                    iterations=10,
                    rng=5,
                    workers=workers,
                    chunk_size=3,
                )
                np.testing.assert_array_equal(samples, reference)
        finally:
            handle.close()
            handle.unlink()
