"""Tests for the pluggable execution backends and backend resolution."""

import pickle

import pytest

from repro.execution import (
    BACKEND_NAMES,
    Backend,
    MultiprocessBackend,
    SerialBackend,
    available_workers,
    pool_scope,
    resolve_backend,
)


def square(value):
    """Module-level so process backends can pickle it."""
    return value * value


def faulty(value):
    raise RuntimeError(f"boom on {value}")


class TestSerialBackend:
    def test_maps_in_order(self):
        assert SerialBackend().map(square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_parallelism_is_one(self):
        assert SerialBackend().parallelism == 1

    def test_empty_task_list(self):
        assert SerialBackend().map(square, []) == []

    def test_satisfies_protocol(self):
        assert isinstance(SerialBackend(), Backend)


class TestMultiprocessBackend:
    def test_maps_in_order(self):
        backend = MultiprocessBackend(workers=2)
        assert backend.map(square, list(range(7))) == [v * v for v in range(7)]

    def test_single_worker_runs_inline(self):
        # workers=1 must not spin up a pool (closures would otherwise fail
        # to pickle) — it degenerates to serial execution.
        backend = MultiprocessBackend(workers=1)
        assert backend.map(lambda v: v + 1, [1, 2]) == [2, 3]

    def test_single_task_runs_inline(self):
        assert MultiprocessBackend(workers=4).map(lambda v: v + 1, [41]) == [42]

    def test_parallelism_reports_workers(self):
        assert MultiprocessBackend(workers=3).parallelism == 3
        assert MultiprocessBackend().parallelism == available_workers()

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            MultiprocessBackend(workers=2).map(faulty, [1, 2])

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            MultiprocessBackend(workers=0)

    def test_satisfies_protocol(self):
        assert isinstance(MultiprocessBackend(workers=2), Backend)


class TestPersistentPool:
    def test_pool_opens_and_closes_with_context(self):
        backend = MultiprocessBackend(workers=2)
        assert not backend.pool_is_open
        with backend:
            assert backend.pool_is_open
        assert not backend.pool_is_open

    def test_pool_is_reused_across_maps(self):
        backend = MultiprocessBackend(workers=2)
        with backend:
            executor = backend._executor
            first = backend.map(square, [1, 2, 3])
            second = backend.map(square, [4, 5])
            assert backend._executor is executor  # same pool, not re-forked
        assert first == [1, 4, 9] and second == [16, 25]

    def test_results_identical_with_and_without_persistent_pool(self):
        backend = MultiprocessBackend(workers=2)
        transient = backend.map(square, list(range(6)))
        with backend:
            persistent = backend.map(square, list(range(6)))
        assert transient == persistent

    def test_context_is_reentrant_outermost_exit_closes(self):
        backend = MultiprocessBackend(workers=2)
        with backend:
            executor = backend._executor
            with backend:
                assert backend._executor is executor
                assert backend.map(square, [3, 4]) == [9, 16]
            assert backend.pool_is_open  # inner exit must not kill the pool
        assert not backend.pool_is_open

    def test_single_worker_context_opens_no_pool(self):
        backend = MultiprocessBackend(workers=1)
        with backend:
            assert not backend.pool_is_open
            assert backend.map(square, [2]) == [4]

    def test_exception_inside_context_still_closes_pool(self):
        backend = MultiprocessBackend(workers=2)
        with pytest.raises(RuntimeError):
            with backend:
                raise RuntimeError("boom")
        assert not backend.pool_is_open

    def test_pickled_backend_drops_the_live_pool(self):
        backend = MultiprocessBackend(workers=2)
        with backend:
            clone = pickle.loads(pickle.dumps(backend))
        assert clone.workers == 2
        assert not clone.pool_is_open

    def test_pool_scope_passthrough_for_serial(self):
        serial = SerialBackend()
        with pool_scope(serial) as scoped:
            assert scoped is serial
            assert scoped.map(square, [3]) == [9]

    def test_pool_scope_opens_multiprocess_pool(self):
        backend = MultiprocessBackend(workers=2)
        with pool_scope(backend) as scoped:
            assert scoped is backend
            assert backend.pool_is_open
        assert not backend.pool_is_open


class TestResolveBackend:
    def test_default_is_serial(self):
        assert isinstance(resolve_backend(), SerialBackend)
        assert isinstance(resolve_backend(None, None), SerialBackend)
        assert isinstance(resolve_backend(None, 1), SerialBackend)

    def test_workers_alone_selects_multiprocess(self):
        backend = resolve_backend(None, 4)
        assert isinstance(backend, MultiprocessBackend)
        assert backend.parallelism == 4

    def test_names(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("multiprocess"), MultiprocessBackend)
        assert isinstance(resolve_backend("MULTIPROCESS", 2), MultiprocessBackend)

    def test_instance_passthrough(self):
        backend = MultiprocessBackend(workers=2)
        assert resolve_backend(backend) is backend

    def test_instance_with_workers_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend(MultiprocessBackend(workers=2), workers=4)

    def test_serial_with_many_workers_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("serial", workers=2)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("quantum")

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            resolve_backend(3.14)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend(None, 0)

    def test_backend_names_constant(self):
        assert set(BACKEND_NAMES) == {"serial", "multiprocess", "gpu", "fleet"}
