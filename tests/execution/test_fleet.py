"""The distributed sweep fleet: transport, artifact cache, bit-identity.

The load-bearing guarantees, mirroring the rest of the execution layer:

* **Bit-identity** — fleet results equal serial results for any worker
  count and any cache state (cold or warm), on the real analysis sweeps
  (``yield_sweep``, ``timeline_sweep``, ``monte_carlo_accuracy``).
* **Warm cache transfers hashes, not arrays** — a repeat request over the
  same spec pushes zero artifact bytes once every worker link is warm,
  and per-chunk task payloads stay within 2x of the ``StreamSlice``
  recipe floor.
* **Failure is loud, never a hang** — a worker disconnect mid-request
  either requeues to a surviving worker or surfaces a clear
  ``FleetRequestError`` within the request deadline.
"""

from __future__ import annotations

import multiprocessing
import pickle
import socket
import time

import numpy as np
import pytest

from repro.execution import (
    BACKEND_NAMES,
    FleetBackend,
    FleetRequestError,
    FleetServer,
    SerialBackend,
    local_fleet,
    pool_scope,
    resolve_backend,
)
from repro.execution.fleet import (
    ArrayRef,
    ConnectionClosed,
    TrialRef,
    array_digest,
    artifact_store,
    parse_address,
    publish_array,
    publish_trial,
    recv_frame,
    run_worker,
    send_frame,
)
from repro.execution.fleet.cache import ArtifactStore
from repro.utils.rng import StreamSlice, spawn_rngs
from repro.variation import UncertaintyModel

WORKER_COUNTS = (1, 2, 4)

_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not _FORK_AVAILABLE,
    reason="fleet tests fork local workers (test-module evaluators must resolve)",
)


# --------------------------------------------------------------------------- #
# module-level evaluators (pickled through the socket into the workers)
# --------------------------------------------------------------------------- #


def echo_chunk(task):
    start, trial, streams = task
    return start, trial(streams)


def slow_chunk(task):
    start, trial, streams = task
    time.sleep(float(streams))
    return start, trial(streams)


class ScaleTrial:
    """A minimal picklable trial: multiply the payload by a constant."""

    def __init__(self, scale: float):
        self.scale = scale

    def __call__(self, value):
        return self.scale * value


# --------------------------------------------------------------------------- #
# transport
# --------------------------------------------------------------------------- #


class TestProtocol:
    def test_frame_round_trip(self):
        left, right = socket.socketpair()
        try:
            payload = {"type": "task", "index": 3, "payload": np.arange(5)}
            send_frame(left, payload)
            received = recv_frame(right)
            assert received["type"] == "task"
            assert received["index"] == 3
            np.testing.assert_array_equal(received["payload"], np.arange(5))
        finally:
            left.close()
            right.close()

    def test_eof_raises_connection_closed(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(ConnectionClosed):
                recv_frame(right)
        finally:
            right.close()

    def test_parse_address(self):
        assert parse_address("10.0.0.2:9100") == ("10.0.0.2", 9100)
        with pytest.raises(ValueError):
            parse_address("no-port-here")
        with pytest.raises(ValueError):
            parse_address("host:notaport")


# --------------------------------------------------------------------------- #
# artifact cache
# --------------------------------------------------------------------------- #


class TestArtifactCache:
    def test_array_digest_is_content_addressed(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert array_digest(a) == array_digest(a.copy())
        assert array_digest(a) != array_digest(a + 1.0)
        assert array_digest(a) != array_digest(a.astype(np.float32))
        assert array_digest(a) != array_digest(a.reshape(4, 3))

    def test_array_ref_pickles_as_a_hash(self):
        ref = publish_array(np.zeros((64, 64)))
        wire = pickle.dumps(ref, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(wire) < 120  # a digest, not 32 KiB of zeros
        clone = pickle.loads(wire)
        assert clone == ref
        np.testing.assert_array_equal(clone.array, np.zeros((64, 64)))

    def test_trial_publish_dedupes_identical_trials(self):
        first, _ = publish_trial(ScaleTrial(2.5))
        second, _ = publish_trial(ScaleTrial(2.5))
        third, _ = publish_trial(ScaleTrial(3.5))
        assert first.digest == second.digest
        assert first.digest != third.digest
        assert isinstance(first, TrialRef)

    def test_store_lru_evicts_by_bytes(self):
        store = ArtifactStore(max_bytes=3000)
        for index in range(4):
            store.put(f"d{index}", np.zeros(128), nbytes=1024)
        assert store.total_bytes <= 3000
        assert "d0" not in store  # oldest evicted
        assert "d3" in store
        assert store.missing(("d0", "d3")) == ("d0",)

    def test_store_get_miss_is_a_clear_error(self):
        with pytest.raises(KeyError, match="artifact"):
            ArtifactStore().get("deadbeef" * 4)


# --------------------------------------------------------------------------- #
# backend resolution and scheduling plumbing
# --------------------------------------------------------------------------- #


class TestFleetResolution:
    def test_fleet_is_a_registered_backend(self):
        assert "fleet" in BACKEND_NAMES

    def test_resolve_backend_builds_a_fleet(self):
        backend = resolve_backend("fleet", workers=3)
        assert isinstance(backend, FleetBackend)
        assert backend.min_workers == 3
        assert backend.remote is True

    def test_pool_scope_keeps_the_coordinator_alive(self):
        with local_fleet(workers=1) as fleet:
            with pool_scope(fleet):
                pass
            # pool_scope exit must NOT close the persistent coordinator.
            result = fleet.map(echo_chunk, [(0, ScaleTrial(2.0), 4.0)])
            assert result == [(0, 8.0)]

    def test_order_preserved_and_results_match_inline(self):
        tasks = [(i, ScaleTrial(1.5), float(i)) for i in range(11)]
        expected = [echo_chunk(task) for task in tasks]
        with local_fleet(workers=2) as fleet:
            assert fleet.map(echo_chunk, tasks) == expected


# --------------------------------------------------------------------------- #
# bit-identity against the serial backend on the real sweeps
# --------------------------------------------------------------------------- #


def _yield_kwargs():
    return dict(sigmas=(0.0, 0.02, 0.05), iterations=6, rng=13)


def _timeline_kwargs():
    from repro.variation.process import OrnsteinUhlenbeckProcess

    return dict(
        model=UncertaintyModel.phase_only(0.08),
        process=OrnsteinUhlenbeckProcess(correlation_time=4.0),
        num_steps=3,
        timelines=6,
        rng=5,
    )


class TestFleetBitIdentity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_yield_sweep_matches_serial(self, small_task, workers):
        from repro.analysis.yield_analysis import yield_sweep

        features = small_task.test_features[:40]
        labels = small_task.test_labels[:40]
        serial = yield_sweep(small_task.spnn, features, labels, **_yield_kwargs())
        with local_fleet(workers=workers) as fleet:
            sharded = yield_sweep(
                small_task.spnn, features, labels, backend=fleet, **_yield_kwargs()
            )
        for sigma in _yield_kwargs()["sigmas"]:
            assert np.array_equal(
                serial.accuracy_samples[sigma], sharded.accuracy_samples[sigma]
            ), (workers, sigma)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_timeline_sweep_matches_serial(self, small_task, workers):
        from repro.analysis.timeline import timeline_sweep

        features = small_task.test_features[:40]
        labels = small_task.test_labels[:40]
        serial = timeline_sweep(small_task.spnn, features, labels, **_timeline_kwargs())
        with local_fleet(workers=workers) as fleet:
            sharded = timeline_sweep(
                small_task.spnn, features, labels, backend=fleet, **_timeline_kwargs()
            )
        np.testing.assert_array_equal(serial.accuracy, sharded.accuracy)
        np.testing.assert_array_equal(serial.recalibrations, sharded.recalibrations)

    def test_monte_carlo_accuracy_matches_serial(self, small_task):
        from repro.onn.inference import monte_carlo_accuracy

        features = small_task.test_features[:40]
        labels = small_task.test_labels[:40]
        model = UncertaintyModel.both(0.03)
        serial = monte_carlo_accuracy(
            small_task.spnn, features, labels, model, iterations=12, rng=7
        )
        with local_fleet(workers=2) as fleet:
            sharded = monte_carlo_accuracy(
                small_task.spnn,
                features,
                labels,
                model,
                iterations=12,
                rng=7,
                backend=fleet,
            )
        np.testing.assert_array_equal(serial, sharded)


# --------------------------------------------------------------------------- #
# cold vs warm artifact cache
# --------------------------------------------------------------------------- #


class TestArtifactCacheColdWarm:
    def test_warm_request_transfers_hashes_not_arrays(self, small_task):
        """Repeat the same sweep on the same fleet: blobs stop flowing.

        The first (cold) request pushes the trial/network/eval-array blobs
        to the worker links it uses; once every link has served once, an
        identical request pushes **zero** artifact bytes — only digests and
        per-chunk ``StreamSlice`` recipes travel — and results stay
        bit-identical throughout.
        """
        from repro.analysis.yield_analysis import yield_sweep

        features = small_task.test_features[:40]
        labels = small_task.test_labels[:40]
        with local_fleet(workers=2) as fleet:
            cold = yield_sweep(
                small_task.spnn, features, labels, backend=fleet, **_yield_kwargs()
            )
            cold_requests = len(fleet.request_log)
            cold_artifact_bytes = sum(
                entry["artifact_bytes"] for entry in fleet.request_log
            )
            assert cold_artifact_bytes > 0  # the cold run really pushed blobs

            warm_bytes = None
            for _ in range(4):  # links warm lazily; a couple of repeats saturate
                warm = yield_sweep(
                    small_task.spnn, features, labels, backend=fleet, **_yield_kwargs()
                )
                for sigma in _yield_kwargs()["sigmas"]:
                    assert np.array_equal(
                        cold.accuracy_samples[sigma], warm.accuracy_samples[sigma]
                    )
                latest = fleet.request_log[-1]
                warm_bytes = latest["artifact_bytes"]
                if warm_bytes == 0:
                    break
            assert warm_bytes == 0, fleet.request_log

            # Per-chunk payloads are hash-sized: within 2x of what the
            # bare StreamSlice recipe for the largest chunk pickles to.
            chunks = sum(e["tasks"] for e in fleet.request_log[cold_requests:])
            task_bytes = sum(e["task_bytes"] for e in fleet.request_log[cold_requests:])
            slice_bytes = _stream_slice_floor(_yield_kwargs()["iterations"])
            assert task_bytes / chunks <= 2 * slice_bytes, (
                task_bytes / chunks,
                slice_bytes,
            )

    def test_cold_and_warm_runs_match_serial(self, small_task):
        from repro.onn.inference import monte_carlo_accuracy

        features = small_task.test_features[:40]
        labels = small_task.test_labels[:40]
        model = UncertaintyModel.phase_only(0.05)
        serial = monte_carlo_accuracy(
            small_task.spnn, features, labels, model, iterations=8, rng=3
        )
        with local_fleet(workers=2) as fleet:
            for _ in range(3):  # cold, then warm, then warmer
                sample = monte_carlo_accuracy(
                    small_task.spnn,
                    features,
                    labels,
                    model,
                    iterations=8,
                    rng=3,
                    backend=fleet,
                )
                np.testing.assert_array_equal(serial, sample)


def _stream_slice_floor(count: int) -> int:
    """Pickled bytes of a bare ``(start, digest-ref, StreamSlice)`` chunk task."""
    parent = np.random.default_rng(0)
    recipe = StreamSlice.from_generators(
        tuple(spawn_rngs(parent, count)), trust_fresh=True
    )
    task = (0, TrialRef("0" * 32), recipe)
    return len(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))


# --------------------------------------------------------------------------- #
# failure semantics: disconnects and deadlines, never hangs
# --------------------------------------------------------------------------- #


def _spawn_worker(address: str) -> multiprocessing.Process:
    context = multiprocessing.get_context("fork")
    process = context.Process(target=run_worker, args=(address,), daemon=True)
    process.start()
    return process


class TestFailureSemantics:
    def test_close_retires_the_accept_thread_and_releases_the_port(self):
        # A closed coordinator must leave nothing behind: a leaked accept
        # thread blocked on a recycled fd number can steal connections
        # meant for a newer coordinator (its stale closed flag then drops
        # the worker silently), and a pinned listener keeps the port.
        server = FleetServer()
        host, port = server._host, server._port
        server.close()
        server._accept_thread.join(timeout=5.0)
        assert not server._accept_thread.is_alive()
        fresh = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        fresh.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            fresh.bind((host, port))  # raises if the old listener lingers
        finally:
            fresh.close()

    def test_worker_death_with_no_survivors_is_a_clear_error(self):
        server = FleetServer()
        worker = _spawn_worker(server.address)
        try:
            server.wait_for_workers(1, timeout=30.0)
            backend = FleetBackend(min_workers=1, timeout=60.0, server=server)
            tasks = [(0, ScaleTrial(1.0), 30.0)]  # sleeps 30s per chunk
            started = time.monotonic()

            def killer():
                time.sleep(1.0)
                worker.terminate()

            import threading

            threading.Thread(target=killer, daemon=True).start()
            with pytest.raises(FleetRequestError, match="disconnected"):
                backend.map(slow_chunk, tasks)
            assert time.monotonic() - started < 20.0  # error, not a hang
        finally:
            worker.terminate()
            server.close()

    def test_worker_death_requeues_to_survivors(self):
        server = FleetServer()
        workers = [_spawn_worker(server.address) for _ in range(2)]
        try:
            server.wait_for_workers(2, timeout=30.0)
            backend = FleetBackend(min_workers=2, timeout=120.0, server=server)
            tasks = [(i, ScaleTrial(2.0), 0.3) for i in range(8)]
            expected = [(i, 0.6) for i in range(8)]

            def killer():
                time.sleep(0.5)
                workers[0].terminate()

            import threading

            threading.Thread(target=killer, daemon=True).start()
            assert backend.map(slow_chunk, tasks) == expected
            assert server.worker_count == 1
        finally:
            for worker in workers:
                worker.terminate()
            server.close()

    def test_request_deadline_surfaces_a_timeout(self):
        server = FleetServer()
        worker = _spawn_worker(server.address)
        try:
            server.wait_for_workers(1, timeout=30.0)
            backend = FleetBackend(min_workers=1, timeout=1.0, server=server)
            with pytest.raises(FleetRequestError, match="timed out"):
                backend.map(slow_chunk, [(0, ScaleTrial(1.0), 30.0)])
        finally:
            worker.terminate()
            server.close()

    def test_worker_error_names_the_worker_and_chunk(self):
        with local_fleet(workers=1) as fleet:
            with pytest.raises(FleetRequestError, match="failed chunk"):
                fleet.map(echo_chunk, [(0, ScaleTrial(1.0), "not-a-number")])
            # The fleet stays serviceable after a failed request.
            assert fleet.map(echo_chunk, [(1, ScaleTrial(2.0), 3.0)]) == [(1, 6.0)]

    def test_no_workers_connected_fails_fast(self):
        backend = FleetBackend(min_workers=1, connect_timeout=0.5)
        try:
            with pytest.raises(FleetRequestError, match="spnn-repro worker --connect"):
                backend.map(echo_chunk, [(0, ScaleTrial(1.0), 1.0)])
        finally:
            backend.close()


# --------------------------------------------------------------------------- #
# telemetry: frames carry the evaluating host
# --------------------------------------------------------------------------- #


class TestFleetTelemetry:
    def test_traced_fleet_frames_carry_host_and_wire_payload(self, small_task):
        from repro.analysis.yield_analysis import yield_sweep
        from repro.observability import observe

        features = small_task.test_features[:40]
        labels = small_task.test_labels[:40]
        with local_fleet(workers=2) as fleet:
            yield_sweep(  # warm every link so frame payloads are hash-sized
                small_task.spnn, features, labels, backend=fleet, **_yield_kwargs()
            )
            with observe() as rec:
                traced = yield_sweep(
                    small_task.spnn, features, labels, backend=fleet, **_yield_kwargs()
                )
            serial = yield_sweep(small_task.spnn, features, labels, **_yield_kwargs())
            for sigma in _yield_kwargs()["sigmas"]:
                assert np.array_equal(
                    serial.accuracy_samples[sigma], traced.accuracy_samples[sigma]
                )
        frames = [f for f in rec.frames if f.label == "yield"]
        assert frames
        assert all(f.host for f in frames)
        slice_bytes = _stream_slice_floor(_yield_kwargs()["iterations"])
        for frame in frames:
            # Instrumentation measures the wire payload (refs + recipe),
            # not the rehydrated arrays.
            assert frame.task_bytes <= 2 * slice_bytes, frame
        # The fleet's hosting runs through its own spans.
        names = {s.name for s in rec.spans}
        assert "fleet/host_arrays" in names
        assert "fleet/host_network" in names
