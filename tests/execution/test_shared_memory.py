"""Shared-memory eval hosting: roundtrip, bit-identity, lifecycle."""

import numpy as np
import pytest

from repro.execution import (
    MultiprocessBackend,
    SerialBackend,
    SharedArray,
    pool_scope,
    resolve_array,
    shared_eval_arrays,
    shared_memory_available,
)
from repro.onn import SPNNArchitecture
from repro.onn.inference import monte_carlo_accuracy
from repro.onn.spnn import SPNN
from repro.variation.models import UncertaintyModel

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory unavailable"
)


def _small_spnn(seed=3):
    gen = np.random.default_rng(seed)
    arch = SPNNArchitecture(layer_dims=(8, 8, 6))
    weights = [
        (gen.standard_normal((8, 8)) + 1j * gen.standard_normal((8, 8))) / 3.0,
        (gen.standard_normal((6, 8)) + 1j * gen.standard_normal((6, 8))) / 3.0,
    ]
    spnn = SPNN(weights, arch)
    features = gen.standard_normal((50, 8)) + 1j * gen.standard_normal((50, 8))
    labels = gen.integers(0, 6, 50)
    return spnn, features, labels


class TestSharedArray:
    def test_roundtrip_preserves_bytes(self):
        array = np.random.default_rng(0).standard_normal((17, 5))
        handle = SharedArray.create(array)
        try:
            assert np.array_equal(handle.array, array)
            assert handle.array.dtype == array.dtype
            assert not handle.array.flags.writeable
        finally:
            handle.close()
            handle.unlink()

    def test_complex_and_integer_dtypes(self):
        for array in (
            np.arange(12, dtype=np.int64).reshape(3, 4),
            (np.arange(6) + 1j * np.arange(6)).reshape(2, 3),
        ):
            handle = SharedArray.create(array)
            try:
                assert np.array_equal(handle.array, array)
            finally:
                handle.close()
                handle.unlink()

    def test_pickled_form_is_a_lightweight_handle(self):
        import pickle

        array = np.zeros((1000, 100))  # 800 KB payload
        handle = SharedArray.create(array)
        try:
            payload = pickle.dumps(handle)
            assert len(payload) < 1024  # name + metadata, not the data
            clone = pickle.loads(payload)
            assert np.array_equal(clone.array, array)
        finally:
            handle.close()
            handle.unlink()

    def test_empty_array_rejected(self):
        with pytest.raises(ValueError):
            SharedArray.create(np.zeros(0))

    def test_resolve_array_passthrough(self):
        plain = np.arange(4)
        assert resolve_array(plain) is plain


class TestSharedEvalArrays:
    def test_serial_backend_passes_arrays_through(self):
        features = np.arange(6.0)
        with shared_eval_arrays(SerialBackend(), features) as (out,):
            assert isinstance(out, np.ndarray)
            assert np.array_equal(out, features)

    def test_single_worker_multiprocess_passes_through(self):
        features = np.arange(6.0)
        with shared_eval_arrays(MultiprocessBackend(workers=1), features) as (out,):
            assert isinstance(out, np.ndarray)

    def test_sharded_backend_hosts_handles_and_unlinks(self):
        features = np.arange(6.0)
        backend = MultiprocessBackend(workers=2)
        with shared_eval_arrays(backend, features) as (handle,):
            assert isinstance(handle, SharedArray)
            name = handle.name
            assert np.array_equal(handle.array, features)
        # After the context the segment is gone.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestBitIdentity:
    def test_shared_eval_bit_identical_for_every_worker_count(self):
        """The ROADMAP contract: shared-memory hosting never changes samples."""
        spnn, features, labels = _small_spnn()
        model = UncertaintyModel.both(0.02)
        reference = monte_carlo_accuracy(spnn, features, labels, model, iterations=24, rng=11)
        for workers in (1, 2, 4):
            backend = MultiprocessBackend(workers=workers)
            with pool_scope(backend), shared_eval_arrays(backend, features, labels) as (
                shared_features,
                shared_labels,
            ):
                samples = monte_carlo_accuracy(
                    spnn,
                    shared_features,
                    shared_labels,
                    model,
                    iterations=24,
                    rng=11,
                    backend=backend,
                )
            assert samples.tobytes() == reference.tobytes(), f"workers={workers}"

    def test_workspace_and_shared_memory_compose_bit_identically(self):
        """Workspace arenas are per-process: reuse is aliasing-safe under sharding."""
        spnn, features, labels = _small_spnn()
        model = UncertaintyModel.both(0.02)
        reference = monte_carlo_accuracy(spnn, features, labels, model, iterations=16, rng=5)
        for workers in (1, 2):
            backend = MultiprocessBackend(workers=workers)
            with pool_scope(backend), shared_eval_arrays(backend, features, labels) as (
                shared_features,
                shared_labels,
            ):
                # Two consecutive runs through the same per-process arenas:
                # buffer recycling must not leak state between runs.
                first = monte_carlo_accuracy(
                    spnn, shared_features, shared_labels, model,
                    iterations=16, rng=5, backend=backend, use_workspace=True,
                )
                second = monte_carlo_accuracy(
                    spnn, shared_features, shared_labels, model,
                    iterations=16, rng=5, backend=backend, use_workspace=True,
                )
            assert first.tobytes() == reference.tobytes(), f"workers={workers}"
            assert second.tobytes() == reference.tobytes(), f"workers={workers}"
