"""Worker-count invariance, chunk-boundary and pickling tests for the engine.

The load-bearing guarantee of the execution layer: Monte Carlo samples are
bit-identical for every backend and every worker count, because the child
streams are spawned deterministically before any scheduling happens and
chunks reassemble by start index into the exact serial order.
"""

import pickle

import numpy as np
import pytest

from repro.analysis import MonteCarloRunner, per_mzi_rvd_criticality, score_components
from repro.analysis.critical import SingleMZIRVDMetric
from repro.analysis.monte_carlo import evaluate_batch_chunk, evaluate_scalar_chunk
from repro.exceptions import ShapeError
from repro.mesh import MZIMesh
from repro.onn.inference import NetworkAccuracyBatchTrial, NetworkAccuracyTrial
from repro.utils import random_unitary
from repro.utils.rng import spawn_rngs
from repro.variation import UncertaintyModel, sample_network_perturbation_batch
from repro.variation.sampler import sample_mesh_perturbation_batch

WORKER_COUNTS = (1, 2, 4)


# --------------------------------------------------------------------------- #
# module-level trials (process backends pickle these into workers)
# --------------------------------------------------------------------------- #


def normal_trial(generator):
    return generator.normal()


def normal_batch_trial(generators):
    return np.array([generator.normal() for generator in generators])


def mesh_rvd_trial(generator):
    """A trial exercising real library code paths inside worker processes."""
    from repro.analysis import rvd
    from repro.variation.sampler import sample_mesh_perturbation

    mesh = MZIMesh.from_unitary(random_unitary(4, rng=13))
    perturbation = sample_mesh_perturbation(mesh, UncertaintyModel.both(0.05), generator)
    return rvd(mesh.matrix(perturbation), mesh.ideal_matrix())


def constant_metric(component_id, generator):
    return float(component_id) + 0.0 * generator.normal()


def noisy_metric(component_id, generator):
    return float(component_id) + generator.normal()


def noisy_batch_metric(component_id, generator, iterations):
    """Consumes the stream exactly like `noisy_metric` looped — bit-identical."""
    return np.array([float(component_id) + generator.normal() for _ in range(iterations)])


def wrong_shape_batch_trial(generators):
    return np.zeros(len(generators) + 1)


class TestWorkerCountInvariance:
    def test_scalar_run_bit_identical_across_worker_counts(self):
        serial = MonteCarloRunner(iterations=23).run(normal_trial, rng=11).samples
        for workers in WORKER_COUNTS:
            runner = MonteCarloRunner(iterations=23, chunk_size=4, workers=workers)
            assert np.array_equal(runner.run(normal_trial, rng=11).samples, serial), workers

    def test_batched_run_bit_identical_across_worker_counts(self):
        serial = MonteCarloRunner(iterations=23).run_batched(normal_batch_trial, rng=11).samples
        for workers in WORKER_COUNTS:
            runner = MonteCarloRunner(iterations=23, chunk_size=4, workers=workers)
            assert np.array_equal(runner.run_batched(normal_batch_trial, rng=11).samples, serial)

    def test_scalar_and_batched_agree_under_sharding(self):
        scalar = MonteCarloRunner(iterations=17, workers=2, chunk_size=3).run(normal_trial, rng=5)
        batched = MonteCarloRunner(iterations=17, workers=4, chunk_size=5).run_batched(
            normal_batch_trial, rng=5
        )
        assert np.array_equal(scalar.samples, batched.samples)

    def test_real_mesh_trial_in_workers(self):
        serial = MonteCarloRunner(iterations=6).run(mesh_rvd_trial, rng=3).samples
        sharded = MonteCarloRunner(iterations=6, workers=2, chunk_size=2).run(
            mesh_rvd_trial, rng=3
        ).samples
        assert np.array_equal(serial, sharded)

    def test_explicit_backend_name(self):
        serial = MonteCarloRunner(iterations=9).run(normal_trial, rng=0).samples
        named = MonteCarloRunner(iterations=9, backend="multiprocess", workers=2, chunk_size=2)
        assert np.array_equal(named.run(normal_trial, rng=0).samples, serial)

    def test_invalid_backend_rejected_at_construction(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(iterations=5, backend="gpu")
        with pytest.raises(ValueError):
            MonteCarloRunner(iterations=5, workers=0)


class TestChunkBoundaries:
    @pytest.mark.parametrize(
        "iterations,chunk_size,workers",
        [
            (10, 3, 4),  # iterations not divisible by chunk_size x workers
            (7, 3, 2),  # ragged final chunk
            (5, 1, 4),  # one realization per chunk
            (3, 8, 2),  # chunk larger than iterations -> single chunk
            (2, 2, 4),  # fewer chunks than workers
            (1, 1, 2),  # single iteration
        ],
    )
    def test_ragged_chunking_is_lossless(self, iterations, chunk_size, workers):
        serial = MonteCarloRunner(iterations=iterations).run(normal_trial, rng=2).samples
        runner = MonteCarloRunner(iterations=iterations, chunk_size=chunk_size, workers=workers)
        assert np.array_equal(runner.run(normal_trial, rng=2).samples, serial)
        assert np.array_equal(runner.run_batched(normal_batch_trial, rng=2).samples, serial)

    def test_explicit_chunk_size_caps_but_never_defeats_sharding(self):
        # A chunk_size >= iterations (the experiment configs default to 250)
        # must not collapse a parallel run to a single task.
        from repro.execution import resolve_backend

        runner = MonteCarloRunner(iterations=8, chunk_size=250, workers=2)
        backend = resolve_backend(runner.backend, runner.workers)
        assert runner._effective_chunk_size(backend) < 8
        # ... while still acting as a memory cap when it is the smaller bound
        capped = MonteCarloRunner(iterations=1000, chunk_size=10, workers=2)
        assert capped._effective_chunk_size(resolve_backend(capped.backend, capped.workers)) == 10
        # ... and staying untouched on the serial backend.
        serial = MonteCarloRunner(iterations=1000, chunk_size=250)
        assert serial._effective_chunk_size(resolve_backend(None, None)) == 250

    def test_auto_chunking_covers_all_iterations(self):
        # No explicit chunk_size: parallel backends pick ~2 chunks per worker.
        runner = MonteCarloRunner(iterations=11, workers=4)
        result = runner.run(normal_trial, rng=9)
        serial = MonteCarloRunner(iterations=11).run(normal_trial, rng=9)
        assert np.array_equal(result.samples, serial.samples)

    def test_batch_trial_shape_error_propagates_from_workers(self):
        runner = MonteCarloRunner(iterations=6, workers=2, chunk_size=3)
        with pytest.raises(ShapeError):
            runner.run_batched(wrong_shape_batch_trial, rng=0)


class TestRunManyBatched:
    def test_batched_run_many_matches_scalar_route(self):
        runner = MonteCarloRunner(iterations=12)
        scalar = runner.run_many({"a": normal_trial, "b": normal_trial}, rng=4)
        batched = runner.run_many(
            {"a": normal_batch_trial, "b": normal_batch_trial}, rng=4, batched=True
        )
        for label in ("a", "b"):
            assert np.array_equal(scalar[label].samples, batched[label].samples)
            assert batched[label].label == label

    def test_batched_run_many_with_workers(self):
        serial = MonteCarloRunner(iterations=10).run_many(
            {"x": normal_batch_trial}, rng=1, batched=True
        )
        sharded = MonteCarloRunner(iterations=10, workers=2, chunk_size=3).run_many(
            {"x": normal_batch_trial}, rng=1, batched=True
        )
        assert np.array_equal(serial["x"].samples, sharded["x"].samples)


class TestScoreComponentsBatched:
    def test_batched_metric_bit_identical_to_scalar_reference(self):
        scalar = score_components([0, 1, 2], noisy_metric, iterations=8, rng=6)
        batched = score_components(
            [0, 1, 2], batch_metric_fn=noisy_batch_metric, iterations=8, rng=6
        )
        assert np.array_equal(scalar.as_array(), batched.as_array())
        assert [c.std for c in scalar.scores] == [c.std for c in batched.scores]

    def test_sharded_across_components_bit_identical(self):
        serial = score_components([0, 1, 2, 3], noisy_metric, iterations=5, rng=2)
        for workers in WORKER_COUNTS:
            sharded = score_components(
                [0, 1, 2, 3], noisy_metric, iterations=5, rng=2, workers=workers
            )
            assert np.array_equal(serial.as_array(), sharded.as_array())

    def test_requires_some_metric(self):
        with pytest.raises(ValueError, match="metric_fn"):
            score_components([0, 1], iterations=3, rng=0)

    def test_batch_metric_shape_enforced(self):
        with pytest.raises(ShapeError):
            score_components(
                [0],
                batch_metric_fn=lambda cid, gen, iters: np.zeros(iters + 1),
                iterations=4,
                rng=0,
            )

    def test_constant_metric_ranking_unchanged(self):
        report = score_components(
            [0, 1, 2], constant_metric, iterations=5, rng=0, metric="identity"
        )
        assert report.metric == "identity"
        assert report.ranked()[0].identifier == 2


class TestPerMZISharding:
    def test_per_mzi_rvd_workers_bit_identical(self):
        mesh = MZIMesh.from_unitary(random_unitary(5, rng=8))
        model = UncertaintyModel.both(0.05)
        serial = per_mzi_rvd_criticality(mesh, model, iterations=10, rng=4).as_array()
        for workers in WORKER_COUNTS:
            for vectorized in (False, True):
                sharded = per_mzi_rvd_criticality(
                    mesh, model, iterations=10, rng=4, vectorized=vectorized, workers=workers
                ).as_array()
                assert np.array_equal(serial, sharded), (workers, vectorized)


class TestFig3Sharding:
    def test_run_fig3_workers_bit_identical(self):
        from repro.experiments import Fig3Config, run_fig3

        base = dict(matrix_size=4, num_matrices=2, iterations=5, seed=17)
        serial = run_fig3(Fig3Config(**base)).rvd_table()
        sharded = run_fig3(Fig3Config(workers=2, **base)).rvd_table()
        assert np.array_equal(serial, sharded)


class TestPickling:
    def test_mesh_perturbation_batch_roundtrip(self):
        mesh = MZIMesh.from_unitary(random_unitary(4, rng=1))
        batch = sample_mesh_perturbation_batch(
            mesh, UncertaintyModel.both(0.05), spawn_rngs(0, 3)
        )
        clone = pickle.loads(pickle.dumps(batch))
        assert np.array_equal(batch.delta_theta, clone.delta_theta)
        assert np.array_equal(batch.delta_phi, clone.delta_phi)

    def test_chunk_evaluators_are_picklable(self):
        assert pickle.loads(pickle.dumps(evaluate_scalar_chunk)) is evaluate_scalar_chunk
        assert pickle.loads(pickle.dumps(evaluate_batch_chunk)) is evaluate_batch_chunk

    def test_single_mzi_metric_bound_methods_roundtrip(self):
        mesh = MZIMesh.from_unitary(random_unitary(4, rng=2))
        metric = SingleMZIRVDMetric(
            mesh=mesh,
            model=UncertaintyModel.both(0.05),
            reference=mesh.ideal_matrix(),
        )
        clone_batched = pickle.loads(pickle.dumps(metric.batched))
        gen_a, gen_b = np.random.default_rng(3), np.random.default_rng(3)
        assert np.array_equal(metric.batched(0, gen_a, 4), clone_batched(0, gen_b, 4))


class TestSPNNTrialsPickleAndShard:
    """End-to-end: the SPNN task trials survive pickling and process workers."""

    def test_network_trials_pickle_roundtrip(self, small_task):
        model = UncertaintyModel.both(0.05)
        features = small_task.test_features[:20]
        labels = small_task.test_labels[:20]
        scalar = NetworkAccuracyTrial(
            spnn=small_task.spnn, features=features, labels=labels, model=model
        )
        batched = NetworkAccuracyBatchTrial(
            spnn=small_task.spnn, features=features, labels=labels, model=model
        )
        scalar_clone = pickle.loads(pickle.dumps(scalar))
        batched_clone = pickle.loads(pickle.dumps(batched))
        gen_a, gen_b = np.random.default_rng(7), np.random.default_rng(7)
        assert scalar(gen_a) == scalar_clone(gen_b)
        gens_a, gens_b = spawn_rngs(8, 3), spawn_rngs(8, 3)
        assert np.array_equal(batched(gens_a), batched_clone(gens_b))

    def test_network_perturbation_batch_roundtrip(self, small_task):
        batch = sample_network_perturbation_batch(
            small_task.spnn.photonic_layers, UncertaintyModel.both(0.05), spawn_rngs(0, 2)
        )
        clone = pickle.loads(pickle.dumps(batch))
        for layer, layer_clone in zip(batch, clone):
            assert np.array_equal(layer.u.delta_theta, layer_clone.u.delta_theta)
            assert np.array_equal(layer.v.delta_phi, layer_clone.v.delta_phi)

    def test_monte_carlo_accuracy_worker_invariance(self, small_task):
        from repro.onn import monte_carlo_accuracy

        model = UncertaintyModel.both(0.05)
        features = small_task.test_features[:40]
        labels = small_task.test_labels[:40]
        kwargs = dict(iterations=8, rng=21)
        serial = monte_carlo_accuracy(
            small_task.spnn, features, labels, model, **kwargs
        )
        for workers in (2, 4):
            sharded = monte_carlo_accuracy(
                small_task.spnn, features, labels, model, workers=workers, **kwargs
            )
            assert np.array_equal(serial, sharded), workers
        looped_sharded = monte_carlo_accuracy(
            small_task.spnn, features, labels, model, vectorized=False, workers=2, **kwargs
        )
        assert np.array_equal(serial, looped_sharded)
