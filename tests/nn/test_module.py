"""Tests for Module / Parameter / Sequential."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import ComplexLinear, Module, Parameter, RealLinear, Sequential


class _Toy(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones(3))
        self.child = RealLinear(3, 2, rng=0)

    def forward(self, x):
        return self.child(x * self.weight)


def test_named_parameters_traversal():
    toy = _Toy()
    names = dict(toy.named_parameters())
    assert "weight" in names
    assert "child.weight" in names and "child.bias" in names


def test_parameters_are_registered_tensors():
    toy = _Toy()
    params = list(toy.parameters())
    assert all(isinstance(p, Parameter) and p.requires_grad for p in params)


def test_num_parameters_counts_complex_twice():
    layer = ComplexLinear(4, 3, rng=0)
    assert layer.num_parameters() == 2 * 4 * 3
    real_layer = RealLinear(4, 3, bias=False, rng=0)
    assert real_layer.num_parameters() == 12


def test_train_eval_propagates():
    toy = _Toy()
    toy.eval()
    assert not toy.training and not toy.child.training
    toy.train()
    assert toy.training and toy.child.training


def test_zero_grad_clears_all():
    toy = _Toy()
    out = toy(Tensor(np.ones((2, 3)))).sum()
    out.backward()
    assert any(p.grad is not None for p in toy.parameters())
    toy.zero_grad()
    assert all(p.grad is None for p in toy.parameters())


def test_state_dict_roundtrip():
    a, b = _Toy(), _Toy()
    b.child.weight.data = b.child.weight.data * 0  # make them differ
    b.load_state_dict(a.state_dict())
    assert np.allclose(b.child.weight.data, a.child.weight.data)


def test_load_state_dict_strict_mismatch():
    toy = _Toy()
    with pytest.raises(KeyError):
        toy.load_state_dict({"nonexistent": np.zeros(3)})


def test_load_state_dict_shape_mismatch():
    toy = _Toy()
    state = toy.state_dict()
    state["weight"] = np.zeros(5)
    with pytest.raises(ValueError):
        toy.load_state_dict(state)


def test_forward_not_implemented():
    with pytest.raises(NotImplementedError):
        Module()(1)


def test_sequential_order_and_access():
    seq = Sequential(RealLinear(3, 4, rng=0), RealLinear(4, 2, rng=1))
    assert len(seq) == 2
    assert isinstance(seq[0], RealLinear)
    out = seq(Tensor(np.ones((5, 3))))
    assert out.shape == (5, 2)
    assert len(list(seq.named_parameters())) == 4


def test_named_modules_includes_children():
    seq = Sequential(RealLinear(2, 2, rng=0))
    names = [name for name, _ in seq.named_modules()]
    assert "" in names and "layer0" in names
