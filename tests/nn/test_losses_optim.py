"""Tests for loss modules and optimizers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.exceptions import TrainingError
from repro.nn import SGD, Adam, CrossEntropyLoss, MSELoss, NLLLoss, Parameter


class TestLossModules:
    def test_cross_entropy_from_logits(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = CrossEntropyLoss()(logits, [0, 1])
        assert loss.item() == pytest.approx(np.log(4))

    def test_cross_entropy_from_log_probs(self):
        log_probs = Tensor(np.log(np.full((2, 4), 0.25)))
        loss = CrossEntropyLoss(from_log_probs=True)(log_probs, [2, 3])
        assert loss.item() == pytest.approx(np.log(4))

    def test_nll_loss_module(self):
        log_probs = Tensor(np.log(np.array([[0.9, 0.1]])))
        assert NLLLoss()(log_probs, [0]).item() == pytest.approx(-np.log(0.9))

    def test_mse_loss_module(self):
        assert MSELoss()(Tensor([2.0]), Tensor([0.0])).item() == pytest.approx(4.0)

    def test_invalid_reduction_rejected(self):
        for cls in (CrossEntropyLoss, NLLLoss, MSELoss):
            with pytest.raises(ValueError):
                cls(reduction="nope")


class TestSGD:
    def test_basic_step_moves_against_gradient(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        (p * p).sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 2.0)

    def test_momentum_accumulates(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(2):
            p.zero_grad()
            (p * Tensor([1.0])).sum().backward()
            opt.step()
        # second step includes momentum of the first: 0.1*(1 + 0.9) extra
        assert p.data[0] == pytest.approx(1.0 - 0.1 - 0.1 * 1.9)

    def test_weight_decay(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.zero_grad()
        (p * Tensor([0.0])).sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()  # no backward called
        assert p.data[0] == 1.0

    def test_validation_errors(self):
        p = Parameter(np.array([1.0]))
        with pytest.raises(TrainingError):
            SGD([], lr=0.1)
        with pytest.raises(TrainingError):
            SGD([p], lr=-1.0)
        with pytest.raises(TrainingError):
            SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(TrainingError):
            SGD([p], lr=0.1, weight_decay=-0.1)
        with pytest.raises(TrainingError):
            SGD([Tensor([1.0])], lr=0.1)


class TestAdam:
    def test_first_step_size_is_lr(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01)
        (p * Tensor([3.0])).sum().backward()
        opt.step()
        # Adam's first step has magnitude ~lr regardless of gradient scale.
        assert p.data[0] == pytest.approx(1.0 - 0.01, rel=1e-3)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([4.0, -3.0]))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            p.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.all(np.abs(p.data) < 0.1)

    def test_complex_parameter_support(self):
        p = Parameter(np.array([2.0 + 2.0j]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            p.zero_grad()
            p.abs2().sum().backward()
            opt.step()
        assert abs(p.data[0]) < 0.2

    def test_validation_errors(self):
        p = Parameter(np.array([1.0]))
        with pytest.raises(TrainingError):
            Adam([p], lr=0.0)
        with pytest.raises(TrainingError):
            Adam([p], betas=(1.0, 0.9))
        with pytest.raises(TrainingError):
            Adam([p], eps=0.0)
        with pytest.raises(TrainingError):
            Adam([p], weight_decay=-1.0)
