"""Edge-case tests for the Trainer loop (clipping, partial batches, hooks)."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.exceptions import TrainingError
from repro.nn import (
    Adam,
    ComplexLinear,
    LogSoftmax,
    ModulusSquared,
    Sequential,
    Trainer,
    TrainerConfig,
)


def _toy_dataset(n=40, seed=0):
    gen = np.random.default_rng(seed)
    half = n // 2
    noise = lambda: 0.3 * (gen.standard_normal((half, 4)) + 1j * gen.standard_normal((half, 4)))
    class0 = noise()
    class0[:, :2] += 3.0
    class1 = noise()
    class1[:, 2:] += 3.0
    return np.concatenate([class0, class1]), np.array([0] * half + [1] * half)


def _model(seed=0):
    return Sequential(ComplexLinear(4, 2, rng=seed), ModulusSquared(), LogSoftmax())


def _grad_norm(optimizer):
    total = 0.0
    for param in optimizer.parameters:
        if param.grad is not None:
            total += float(np.sum(np.abs(param.grad) ** 2))
    return np.sqrt(total)


class TestGradientClipScaling:
    def test_clip_rescales_to_exactly_max_norm(self):
        model = _model()
        optimizer = Adam(model.parameters(), lr=0.01)
        trainer = Trainer(model, optimizer, config=TrainerConfig(clip_grad_norm=0.5))
        features, labels = _toy_dataset(16)
        loss, _, _ = trainer.training_step(features, labels)
        optimizer.zero_grad()
        loss.backward()
        before = _grad_norm(optimizer)
        assert before > 0.5  # the toy problem produces large initial gradients
        trainer._clip_gradients()
        assert _grad_norm(optimizer) == pytest.approx(0.5, rel=1e-12)

    def test_clip_preserves_gradient_direction(self):
        model = _model()
        optimizer = Adam(model.parameters(), lr=0.01)
        trainer = Trainer(model, optimizer, config=TrainerConfig(clip_grad_norm=0.25))
        features, labels = _toy_dataset(16)
        loss, _, _ = trainer.training_step(features, labels)
        optimizer.zero_grad()
        loss.backward()
        raw = [p.grad.copy() for p in optimizer.parameters]
        norm = _grad_norm(optimizer)
        trainer._clip_gradients()
        for param, grad in zip(optimizer.parameters, raw):
            assert np.allclose(param.grad, grad * (0.25 / norm))

    def test_no_clip_below_threshold(self):
        model = _model()
        optimizer = Adam(model.parameters(), lr=0.01)
        trainer = Trainer(model, optimizer, config=TrainerConfig(clip_grad_norm=1e9))
        features, labels = _toy_dataset(16)
        loss, _, _ = trainer.training_step(features, labels)
        optimizer.zero_grad()
        loss.backward()
        raw = [p.grad.copy() for p in optimizer.parameters]
        trainer._clip_gradients()
        for param, grad in zip(optimizer.parameters, raw):
            assert np.array_equal(param.grad, grad)


class TestPartialMinibatch:
    def test_final_partial_batch_is_trained_and_weighted(self):
        """10 samples at batch_size 4 -> batches of 4, 4 and 2, all counted."""
        features, labels = _toy_dataset(10)
        seen = []

        class SpyTrainer(Trainer):
            def training_step(self, batch_x, batch_y):
                seen.append(len(batch_y))
                return super().training_step(batch_x, batch_y)

        model = _model()
        trainer = SpyTrainer(
            model,
            Adam(model.parameters(), lr=0.01),
            config=TrainerConfig(epochs=1, batch_size=4, shuffle=False),
        )
        trainer.fit(features, labels)
        assert seen == [4, 4, 2]

    def test_epoch_metrics_weighted_by_batch_size(self):
        """The epoch mean must equal the sample mean, not the batch mean."""
        features, labels = _toy_dataset(10)
        model = _model()
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=1e-12),  # freeze the weights in all but name
            config=TrainerConfig(epochs=1, batch_size=4, shuffle=False),
        )
        _, train_acc = trainer.train_epoch(features, labels)
        # With a vanishing learning rate the weights barely move, so the
        # weighted epoch accuracy must match evaluating the whole set at once.
        _, full_acc = trainer.evaluate(features, labels, batch_size=len(labels))
        assert train_acc == pytest.approx(full_acc, abs=1e-6)


class TestDivergenceError:
    def test_non_finite_loss_raises(self):
        features, labels = _toy_dataset(16)

        class ExplodingTrainer(Trainer):
            def train_epoch(self, features, targets):
                return float("nan"), 0.1  # a diverged epoch

        model = _model()
        trainer = ExplodingTrainer(
            model,
            Adam(model.parameters(), lr=0.01),
            config=TrainerConfig(epochs=3, batch_size=8),
        )
        with pytest.raises(TrainingError, match="diverged at epoch 1"):
            trainer.fit(features, labels)


class TestSeedableEvaluate:
    def test_shuffled_subsample_is_reproducible(self):
        features, labels = _toy_dataset(40)
        model = _model()
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
        a = trainer.evaluate(features, labels, batch_size=8, shuffle=True, rng=3, max_batches=2)
        b = trainer.evaluate(features, labels, batch_size=8, shuffle=True, rng=3, max_batches=2)
        assert a == b

    def test_different_seeds_cover_different_subsamples(self):
        features, labels = _toy_dataset(40, seed=2)
        model = _model(seed=5)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
        results = {
            trainer.evaluate(features, labels, batch_size=4, shuffle=True, rng=seed, max_batches=1)
            for seed in range(8)
        }
        assert len(results) > 1  # at least two distinct single-batch subsamples

    def test_max_batches_limits_work(self):
        features, labels = _toy_dataset(40)
        model = _model()
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
        full = trainer.evaluate(features, labels, batch_size=10)
        partial = trainer.evaluate(features, labels, batch_size=10, max_batches=1)
        assert isinstance(partial[0], float)
        # The unshuffled first batch is all class 0, so the subsample metric
        # legitimately differs from the full-set metric.
        assert full != partial

    def test_max_batches_validation(self):
        features, labels = _toy_dataset(8)
        model = _model()
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
        with pytest.raises(TrainingError):
            trainer.evaluate(features, labels, max_batches=0)


class TestEarlyStop:
    def test_hook_stops_training_and_history_is_truthful(self):
        features, labels = _toy_dataset(32)
        model = _model()
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=0.05),
            config=TrainerConfig(epochs=50, batch_size=8),
            rng=0,
        )
        history = trainer.fit(features, labels, early_stop=lambda h: h.epochs >= 3)
        assert history.epochs == 3
        assert history is trainer.history

    def test_hook_receives_running_history(self):
        features, labels = _toy_dataset(32)
        model = _model()
        epochs_seen = []

        def hook(history):
            epochs_seen.append(history.epochs)
            return False

        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=0.05),
            config=TrainerConfig(epochs=4, batch_size=8),
            rng=0,
        )
        trainer.fit(features, labels, early_stop=hook)
        assert epochs_seen == [1, 2, 3, 4]

    def test_epoch_attribute_tracks_fit(self):
        features, labels = _toy_dataset(16)
        model = _model()
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=0.05),
            config=TrainerConfig(epochs=3, batch_size=8),
        )
        trainer.fit(features, labels)
        assert trainer.epoch == 2  # zero-based index of the last epoch
