"""Tests for linear layers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import ComplexLinear, RealLinear


class TestComplexLinear:
    def test_forward_matches_matmul(self):
        layer = ComplexLinear(4, 3, rng=0)
        x = np.random.default_rng(1).standard_normal((5, 4)) + 0j
        out = layer(Tensor(x))
        assert np.allclose(out.data, x @ layer.weight.data.T)

    def test_weight_dtype_and_shape(self):
        layer = ComplexLinear(6, 2, rng=0)
        assert layer.weight.data.shape == (2, 6)
        assert layer.weight.data.dtype == np.complex128

    def test_bias_enabled(self):
        layer = ComplexLinear(3, 3, bias=True, rng=0)
        layer.bias.data = layer.bias.data + 1.0
        out = layer(Tensor(np.zeros((2, 3), dtype=np.complex128)))
        assert np.allclose(out.data, 1.0)

    def test_no_bias_by_default(self):
        assert ComplexLinear(3, 3, rng=0).bias is None

    def test_seeded_init_reproducible(self):
        a, b = ComplexLinear(4, 4, rng=5), ComplexLinear(4, 4, rng=5)
        assert np.allclose(a.weight.data, b.weight.data)

    def test_weight_matrix_roundtrip(self):
        layer = ComplexLinear(4, 3, rng=0)
        w = np.random.default_rng(2).standard_normal((3, 4)) * 1j
        layer.set_weight_matrix(w)
        assert np.allclose(layer.weight_matrix(), w)
        # returned copy must not alias
        layer.weight_matrix()[0, 0] = 99
        assert layer.weight.data[0, 0] != 99

    def test_set_weight_matrix_rejects_bad_shape(self):
        layer = ComplexLinear(4, 3, rng=0)
        with pytest.raises(ValueError):
            layer.set_weight_matrix(np.zeros((4, 3)))

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            ComplexLinear(0, 3)

    def test_gradients_flow_to_weight(self):
        layer = ComplexLinear(3, 2, rng=0)
        x = Tensor(np.random.default_rng(3).standard_normal((4, 3)) + 0j)
        loss = layer(x).abs2().sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.weight.grad.shape == layer.weight.shape


class TestRealLinear:
    def test_forward_matches_matmul(self):
        layer = RealLinear(4, 2, bias=False, rng=0)
        x = np.random.default_rng(4).standard_normal((3, 4))
        assert np.allclose(layer(Tensor(x)).data, x @ layer.weight.data.T)

    def test_bias_added(self):
        layer = RealLinear(2, 2, bias=True, rng=0)
        layer.bias.data = np.array([1.0, -1.0])
        out = layer(Tensor(np.zeros((1, 2))))
        assert np.allclose(out.data, [[1.0, -1.0]])

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            RealLinear(3, 0)
