"""Tests for activation modules (the paper's SPNN non-linearities)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import LogSoftmax, Modulus, ModulusSoftplus, ModulusSquared, ReLU, Softplus, Tanh


def test_modulus_softplus_value():
    z = Tensor(np.array([3 + 4j]))
    out = ModulusSoftplus()(z)
    assert out.item() == pytest.approx(np.log1p(np.exp(5.0)))
    assert not out.is_complex


def test_modulus_softplus_beta_validation():
    with pytest.raises(ValueError):
        ModulusSoftplus(beta=0.0)


def test_modulus_squared_is_intensity():
    z = Tensor(np.array([[1 + 1j, 2j]]))
    out = ModulusSquared()(z)
    assert np.allclose(out.data, [[2.0, 4.0]])


def test_modulus_module():
    assert Modulus()(Tensor([3 + 4j])).item() == pytest.approx(5.0)


def test_log_softmax_module_normalizes():
    x = Tensor(np.random.default_rng(0).standard_normal((3, 10)))
    out = LogSoftmax()(x)
    assert np.allclose(np.exp(out.data).sum(axis=-1), 1.0)


def test_plain_softplus_relu_tanh():
    x = Tensor(np.array([-1.0, 2.0]))
    assert np.allclose(Softplus()(x).data, np.log1p(np.exp([-1.0, 2.0])))
    assert np.allclose(ReLU()(x).data, [0.0, 2.0])
    assert np.allclose(Tanh()(x).data, np.tanh([-1.0, 2.0]))
    with pytest.raises(ValueError):
        Softplus(beta=-1.0)


def test_spnn_activation_pipeline_gradient_flow():
    """The paper's full activation chain must be differentiable end to end."""
    z = Tensor(np.random.default_rng(1).standard_normal((4, 10)) * (1 + 1j), requires_grad=True)
    out = LogSoftmax()(ModulusSquared()(z))
    loss = -out.sum()
    loss.backward()
    assert z.grad is not None and z.grad.shape == z.shape
