"""Tests for the training loop and metrics."""

import numpy as np
import pytest

from repro.exceptions import TrainingError
from repro.nn import (
    Adam,
    ComplexLinear,
    LogSoftmax,
    ModulusSquared,
    RunningAverage,
    Sequential,
    Trainer,
    TrainerConfig,
    TrainingHistory,
    confusion_matrix,
    iterate_minibatches,
    per_class_accuracy,
    top1_accuracy,
)


def _toy_complex_dataset(n=200, seed=0):
    """Two classes whose energy sits in different feature slots.

    Class 0 has most of its optical power in features 0-1, class 1 in
    features 2-3, so an intensity-reading (modulus-based) classifier can
    separate them — mirroring how the SPNN reads out |z|^2.
    """
    gen = np.random.default_rng(seed)
    half = n // 2
    noise = lambda: 0.3 * (gen.standard_normal((half, 4)) + 1j * gen.standard_normal((half, 4)))
    class0 = noise()
    class0[:, :2] += 3.0 * np.exp(1j * gen.uniform(0, 2 * np.pi, (half, 2)))
    class1 = noise()
    class1[:, 2:] += 3.0 * np.exp(1j * gen.uniform(0, 2 * np.pi, (half, 2)))
    features = np.concatenate([class0, class1])
    labels = np.array([0] * half + [1] * half)
    return features, labels


class TestMinibatches:
    def test_covers_all_samples(self):
        x, y = np.arange(10).reshape(10, 1), np.arange(10)
        batches = list(iterate_minibatches(x, y, batch_size=3, shuffle=False))
        assert sum(len(b[1]) for b in batches) == 10
        assert len(batches) == 4

    def test_shuffle_reproducible(self):
        x, y = np.arange(10).reshape(10, 1), np.arange(10)
        a = [b[1].tolist() for b in iterate_minibatches(x, y, 4, shuffle=True, rng=1)]
        b = [b[1].tolist() for b in iterate_minibatches(x, y, 4, shuffle=True, rng=1)]
        assert a == b

    def test_errors(self):
        with pytest.raises(TrainingError):
            list(iterate_minibatches(np.zeros((3, 1)), np.zeros(2), 1))
        with pytest.raises(TrainingError):
            list(iterate_minibatches(np.zeros((0, 1)), np.zeros(0), 1))
        with pytest.raises(TrainingError):
            list(iterate_minibatches(np.zeros((3, 1)), np.zeros(3), 0))


class TestMetrics:
    def test_top1_accuracy(self):
        outputs = np.array([[0.8, 0.2], [0.3, 0.7]])
        assert top1_accuracy(outputs, [0, 1]) == 1.0
        assert top1_accuracy(outputs, [1, 1]) == 0.5

    def test_top1_accuracy_errors(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros((2, 2)), [0])
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_confusion_matrix_and_per_class(self):
        outputs = np.array([[0.9, 0.1], [0.9, 0.1], [0.1, 0.9]])
        cm = confusion_matrix(outputs, [0, 1, 1], num_classes=2)
        assert cm.tolist() == [[1, 0], [1, 1]]
        pca = per_class_accuracy(cm)
        assert pca[0] == 1.0 and pca[1] == 0.5

    def test_per_class_accuracy_handles_absent_class(self):
        pca = per_class_accuracy(np.array([[2, 0], [0, 0]]))
        assert np.isnan(pca[1])

    def test_running_average(self):
        avg = RunningAverage()
        avg.update(1.0, weight=1)
        avg.update(3.0, weight=3)
        assert avg.value == pytest.approx(2.5)
        avg.reset()
        assert np.isnan(avg.value)

    def test_training_history(self):
        hist = TrainingHistory()
        hist.record(1.0, 0.5, 0.9, 0.6)
        hist.record(0.5, 0.7, 0.8, 0.75)
        assert hist.epochs == 2
        assert hist.best_val_accuracy() == 0.75
        assert set(hist.as_dict()) == {"train_loss", "train_accuracy", "val_loss", "val_accuracy"}


class TestTrainer:
    def _model(self, seed=0):
        return Sequential(ComplexLinear(4, 2, rng=seed), ModulusSquared(), LogSoftmax())

    def test_training_improves_accuracy(self):
        features, labels = _toy_complex_dataset()
        model = self._model()
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=0.05),
            config=TrainerConfig(epochs=15, batch_size=32),
            rng=0,
        )
        history = trainer.fit(features, labels, features, labels)
        assert history.val_accuracy[-1] > 0.9
        assert history.train_loss[-1] < history.train_loss[0]

    def test_evaluate_does_not_update_weights(self):
        features, labels = _toy_complex_dataset(80)
        model = self._model()
        trainer = Trainer(model, Adam(model.parameters(), lr=0.05), rng=0)
        before = model.state_dict()
        trainer.evaluate(features, labels)
        after = model.state_dict()
        assert all(np.allclose(before[k], after[k]) for k in before)

    def test_gradient_clipping_limits_norm(self):
        features, labels = _toy_complex_dataset(64)
        model = self._model()
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=0.05),
            config=TrainerConfig(epochs=1, batch_size=16, clip_grad_norm=1e-8),
            rng=0,
        )
        before = model.state_dict()
        trainer.fit(features, labels)
        after = model.state_dict()
        # With a tiny clip norm the updates are bounded by Adam's lr but the
        # run must still complete without blowing up.
        assert all(np.isfinite(after[k]).all() for k in after)
        assert any(not np.allclose(before[k], after[k]) for k in before)
