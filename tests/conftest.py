"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import os

# Keep the suite on the static kernel-preference order: a cold cache
# would otherwise trigger a lazy autotune calibration mid-test (slow,
# writes under ~/.cache) and make dispatch machine-dependent.  The
# tuning tests opt back in explicitly via monkeypatch.
os.environ.setdefault("REPRO_AUTOTUNE", "off")

import numpy as np
import pytest

from repro.onn import SPNNArchitecture, SPNNTrainingConfig, build_trained_spnn
from repro.utils import random_unitary


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for per-test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def unitary_5x5() -> np.ndarray:
    """A fixed Haar-random 5x5 unitary (the Fig. 3 mesh size)."""
    return random_unitary(5, rng=7)


@pytest.fixture
def unitary_8x8() -> np.ndarray:
    """A fixed Haar-random 8x8 unitary."""
    return random_unitary(8, rng=11)


@pytest.fixture(scope="session")
def small_task():
    """A small trained + compiled SPNN task shared across system-level tests.

    Uses the paper's architecture (16-16-16-10) but a reduced synthetic
    corpus and few epochs so the whole test suite stays fast.  Session
    scoped: trained once per pytest run.
    """
    config = SPNNTrainingConfig(
        architecture=SPNNArchitecture(layer_dims=(16, 16, 16, 10)),
        num_train=800,
        num_test=250,
        epochs=35,
        seed=99,
    )
    return build_trained_spnn(config)
