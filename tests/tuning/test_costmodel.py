"""Unit tests for the autotune cost model and dispatch policy.

Covers the :class:`CostTable` data model (grid recording, bilinear
interpolation, observed-layer EWMA, JSON round-trip, corrupt/stale
rejection), the cache-path/fingerprint plumbing, and the policy contract:
``REPRO_AUTOTUNE=off`` and ``REPRO_SWEEP_KERNEL`` pins bypass the table,
non-host backends are never steered, ties keep the static order, and a
corrupt on-disk cache falls back to the static preference *loudly*
(``RuntimeWarning``) without ever crashing a sweep.
"""

from __future__ import annotations

import json

import pytest

from repro.arrays import HOST_BACKEND, get_array_backend
from repro.arrays.sweep import SweepShape, select_sweep_kernel
from repro.tuning import (
    CostTable,
    CostTableError,
    autotune_enabled,
    cache_dir,
    cache_path,
    fingerprint_digest,
    machine_fingerprint,
)
from repro.tuning.policy import (
    choose_kernel_name,
    ensure_table,
    install_table,
    reset_tuning_state,
)


@pytest.fixture(autouse=True)
def _clean_tuning_state(tmp_path, monkeypatch):
    """Isolate every test: fresh memo state, cache under tmp, autotune on."""
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    monkeypatch.setenv("REPRO_AUTOTUNE", "on")
    monkeypatch.delenv("REPRO_SWEEP_KERNEL", raising=False)
    reset_tuning_state()
    yield
    reset_tuning_state()


def _table(points) -> CostTable:
    """A table from ``{kernel: {(scheme, n, batch): seconds}}`` shorthand."""
    table = CostTable(fingerprint={"machine": "test"})
    for kernel, grid in points.items():
        for (scheme, n, batch), seconds in grid.items():
            table.record_grid(kernel, scheme, n, batch, columns=n, seconds=seconds)
    return table


class TestCostTable:
    def test_exact_grid_point_predicts_itself(self):
        table = _table({"fused": {("clements", 8, 16): 1e-3}})
        assert table.predict("fused", 8, 16, 8) == pytest.approx(1e-3)

    def test_unknown_kernel_predicts_none(self):
        table = _table({"fused": {("clements", 8, 16): 1e-3}})
        assert table.predict("numba", 8, 16, 8) is None

    def test_interpolates_between_batches(self):
        table = _table(
            {"fused": {("clements", 8, 1): 1e-4, ("clements", 8, 101): 1.01e-2}}
        )
        # per-column cost is linear in batch here; batch=51 is the midpoint
        midpoint = table.predict("fused", 8, 51, 8)
        assert midpoint == pytest.approx((1e-4 + 1.01e-2) / 2.0, rel=1e-6)

    def test_interpolates_between_ns(self):
        table = _table(
            {"fused": {("clements", 4, 16): 1e-3, ("clements", 12, 16): 3e-3}}
        )
        # per-column seconds interpolate along n, then scale by columns=8
        per_column_4 = 1e-3 / 4
        per_column_12 = 3e-3 / 12
        expected = (per_column_4 + per_column_12) / 2.0 * 8
        assert table.predict("fused", 8, 16, 8) == pytest.approx(expected, rel=1e-6)

    def test_extrapolates_beyond_largest_batch(self):
        table = _table(
            {"fused": {("clements", 8, 1): 1e-4, ("clements", 8, 101): 1.01e-2}}
        )
        beyond = table.predict("fused", 8, 201, 8)
        assert beyond == pytest.approx(2.01e-2, rel=1e-6)
        assert beyond > table.predict("fused", 8, 101, 8)

    def test_scheme_matched_points_preferred(self):
        table = _table(
            {
                "fused": {
                    ("clements", 8, 16): 1e-3,
                    ("reck", 8, 16): 9e-3,
                }
            }
        )
        assert table.predict("fused", 8, 16, 8, scheme="reck") == pytest.approx(9e-3)
        assert table.predict("fused", 8, 16, 8, scheme="clements") == pytest.approx(1e-3)

    def test_observed_layer_beats_grid_and_decays(self):
        table = _table({"fused": {("clements", 8, 16): 1e-3}})
        table.observe("fused", 8, 16, 8, seconds=8e-3, decay=0.5)
        assert table.predict("fused", 8, 16, 8) == pytest.approx(8e-3)
        table.observe("fused", 8, 16, 8, seconds=4e-3, decay=0.5)
        # EWMA: 0.5 * 4e-3 + 0.5 * 8e-3 = 6e-3
        assert table.predict("fused", 8, 16, 8) == pytest.approx(6e-3)

    def test_observation_bumps_generation(self):
        table = _table({"fused": {("clements", 8, 16): 1e-3}})
        generation = table.generation
        table.observe("fused", 8, 16, 8, seconds=1e-3)
        assert table.generation == generation + 1

    def test_round_trip_through_payload(self):
        table = _table(
            {
                "fused": {("clements", 8, 16): 1e-3, ("reck", 16, 128): 2e-2},
                "looped": {("clements", 8, 16): 5e-3},
            }
        )
        table.observe("fused", 8, 16, 8, seconds=2e-3)
        clone = CostTable.from_payload(table.to_payload())
        assert clone.grid == table.grid
        assert clone.observed == table.observed
        assert clone.fingerprint == table.fingerprint

    def test_save_load_round_trip(self, tmp_path):
        table = _table({"fused": {("clements", 8, 16): 1e-3}})
        path = tmp_path / "cost.json"
        table.save(path)
        loaded = CostTable.load(path)
        assert loaded.grid == table.grid

    def test_load_rejects_corrupt_json(self, tmp_path):
        path = tmp_path / "cost.json"
        path.write_text("{not json")
        with pytest.raises(CostTableError):
            CostTable.load(path)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "cost.json"
        path.write_text(json.dumps({"schema": 999, "grid": []}))
        with pytest.raises(CostTableError, match="stale"):
            CostTable.load(path)

    def test_load_rejects_empty_grid(self, tmp_path):
        table = CostTable(fingerprint={})
        path = tmp_path / "cost.json"
        path.write_text(json.dumps(table.to_payload()))
        with pytest.raises(CostTableError, match="no calibration grid"):
            CostTable.load(path)

    def test_load_rejects_stale_fingerprint(self, tmp_path):
        table = _table({"fused": {("clements", 8, 16): 1e-3}})
        path = tmp_path / "cost.json"
        table.save(path)
        with pytest.raises(CostTableError, match="fingerprint"):
            CostTable.load(path, expected_fingerprint={"machine": "other"})


class TestFingerprint:
    def test_digest_is_stable_and_kernel_sensitive(self):
        base = machine_fingerprint(("fused", "looped"))
        again = machine_fingerprint(("looped", "fused"))  # order-insensitive
        assert fingerprint_digest(base) == fingerprint_digest(again)
        other = machine_fingerprint(("fused", "looped", "numba"))
        assert fingerprint_digest(base) != fingerprint_digest(other)

    def test_cache_path_honors_xdg(self, tmp_path, monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "custom"))
        assert cache_dir() == tmp_path / "custom" / "spnn-repro"
        path = cache_path(machine_fingerprint())
        assert path.parent == cache_dir()
        assert path.name.startswith("cost_table_")

    def test_autotune_enabled_values(self, monkeypatch):
        for off in ("off", "0", "false", "no", "OFF"):
            monkeypatch.setenv("REPRO_AUTOTUNE", off)
            assert not autotune_enabled()
        for on in ("", "on", "1", "yes"):
            monkeypatch.setenv("REPRO_AUTOTUNE", on)
            assert autotune_enabled()


class TestPolicy:
    def test_injected_table_steers_choice(self):
        table = _table(
            {
                "fused": {("clements", 8, 1): 9e-3, ("clements", 8, 1024): 1e-3},
                "looped": {("clements", 8, 1): 1e-4, ("clements", 8, 1024): 9e-1},
            }
        )
        install_table(table)
        small = choose_kernel_name(HOST_BACKEND, SweepShape(8, 1, 8), ("fused", "looped"))
        assert small == "looped"
        # At the big shape fused wins — and since fused is already the
        # static head of the candidate list, the policy has no opinion.
        big = choose_kernel_name(HOST_BACKEND, SweepShape(8, 1024, 8), ("fused", "looped"))
        assert big is None

    def test_autotune_off_bypasses_table(self, monkeypatch):
        table = _table({"looped": {("clements", 8, 1): 1e-9}})
        install_table(table)
        monkeypatch.setenv("REPRO_AUTOTUNE", "off")
        assert (
            choose_kernel_name(HOST_BACKEND, SweepShape(8, 1, 8), ("fused", "looped"))
            is None
        )

    def test_non_host_backend_never_steered(self):
        table = _table({"looped": {("clements", 8, 1): 1e-9}})
        install_table(table, backend_name="mock_device")
        mock = get_array_backend("mock_device")
        assert (
            choose_kernel_name(mock, SweepShape(8, 1, 8), ("fused", "looped")) is None
        )

    def test_unpredicted_candidate_never_chosen(self):
        table = _table({"fused": {("clements", 8, 1): 1e-3}})
        install_table(table)
        # looped has no prediction; fused (static head) keeps the slot.
        assert (
            choose_kernel_name(HOST_BACKEND, SweepShape(8, 1, 8), ("fused", "looped"))
            is None
        )

    def test_env_pin_always_wins_over_table(self, monkeypatch):
        table = _table(
            {
                "fused": {("clements", 8, 1): 9e-3},
                "looped": {("clements", 8, 1): 1e-9},
            }
        )
        install_table(table)
        monkeypatch.setenv("REPRO_SWEEP_KERNEL", "fused")
        kernel = select_sweep_kernel(HOST_BACKEND, SweepShape(8, 1, 8))
        assert kernel.name == "fused"

    def test_select_uses_table_with_shape_hint(self):
        table = _table(
            {
                "fused": {("clements", 8, 1): 9e-3},
                "looped": {("clements", 8, 1): 1e-9},
            }
        )
        install_table(table)
        assert select_sweep_kernel(HOST_BACKEND, SweepShape(8, 1, 8)).name == "looped"
        assert select_sweep_kernel(HOST_BACKEND).name == "fused", (
            "unhinted selection keeps the static preference order"
        )

    def test_corrupt_cache_file_warns_and_falls_back(self):
        path = cache_path(machine_fingerprint(_available_host_kernels()))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{definitely not json")
        with pytest.warns(RuntimeWarning, match="unusable autotune cache"):
            assert ensure_table("numpy") is None
        # The failure is memoized: selection stays static, no more warnings.
        assert select_sweep_kernel(HOST_BACKEND, SweepShape(8, 1, 8)).name == "fused"
        assert ensure_table("numpy") is None

    def test_stale_fingerprint_cache_warns_and_falls_back(self):
        stale = CostTable(fingerprint={"machine": "somewhere-else"})
        stale.record_grid("looped", "clements", 8, 1, 8, 1e-9)
        path = cache_path(machine_fingerprint(_available_host_kernels()))
        path.parent.mkdir(parents=True, exist_ok=True)
        stale.save(path)
        with pytest.warns(RuntimeWarning, match="unusable autotune cache"):
            assert ensure_table("numpy") is None
        assert select_sweep_kernel(HOST_BACKEND, SweepShape(8, 1, 8)).name == "fused"

    def test_feedback_refines_installed_table(self):
        from repro.arrays import apply_column_sweep
        from repro.mesh.mesh import MZIMesh
        from repro.utils import random_unitary

        table = _table({"fused": {("clements", 5, 1): 1e-3}})
        install_table(table)
        mesh = MZIMesh.from_unitary(random_unitary(5, rng=3))
        mesh.matrix()  # one hinted dispatch through the feedback sink
        assert table.observed, "live dispatch must land in the observed layer"
        ((kernel, shapes),) = [(k, v) for k, v in table.observed.items()]
        assert kernel in ("fused", "looped")
        assert all(seconds > 0.0 for seconds in shapes.values())


def _available_host_kernels():
    from repro.arrays.sweep import available_sweep_kernels

    return tuple(available_sweep_kernels())
