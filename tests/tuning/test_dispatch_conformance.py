"""Shape-hint dispatch conformance: hints change *which* kernel runs, never
*what* it computes.

For every available kernel the hinted path (``select_sweep_kernel`` with a
:class:`SweepShape`) must yield bit-identical results to the unhinted path
and to an explicit ``REPRO_SWEEP_KERNEL`` pin; a synthetic cost table that
steers a small shape to the looped kernel must flip the dispatch choice
while leaving the numbers untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import HOST_BACKEND, apply_column_sweep
from repro.arrays.sweep import SweepShape, available_sweep_kernels, select_sweep_kernel
from repro.mesh.mesh import MZIMesh
from repro.tuning import CostTable
from repro.tuning.policy import install_table, reset_tuning_state
from repro.utils import random_unitary, spawn_rngs
from repro.variation import UncertaintyModel, sample_mesh_perturbation_batch


@pytest.fixture(autouse=True)
def _clean_tuning_state(tmp_path, monkeypatch):
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    monkeypatch.setenv("REPRO_AUTOTUNE", "on")
    monkeypatch.delenv("REPRO_SWEEP_KERNEL", raising=False)
    reset_tuning_state()
    yield
    reset_tuning_state()


def _sweep_inputs(mesh: MZIMesh, batch: int):
    """The exact (program, components) pair production sweeps consume."""
    perturbation = sample_mesh_perturbation_batch(
        mesh, UncertaintyModel.both(0.01), spawn_rngs(23, batch)
    )
    components, _ = mesh._blocks_and_phases(perturbation, HOST_BACKEND)
    program = mesh.column_program(HOST_BACKEND)
    return program, tuple(c[..., program.perm] for c in components)


def _sweep(mesh: MZIMesh, program, components, batch: int, kernel=None):
    work = np.broadcast_to(
        np.eye(mesh.n, dtype=complex), (batch, mesh.n, mesh.n)
    ).copy()
    apply_column_sweep(HOST_BACKEND, work, components, program, kernel=kernel)
    return work


@pytest.mark.parametrize("scheme", ["clements", "reck"])
def test_every_kernel_bit_identical_hinted_vs_pinned(scheme, monkeypatch):
    mesh = MZIMesh.from_unitary(random_unitary(6, rng=5), scheme=scheme)
    program, components = _sweep_inputs(mesh, batch=4)
    reference = _sweep(mesh, program, components, 4, kernel="looped")
    for name in available_sweep_kernels(HOST_BACKEND):
        # explicit pin through the environment
        monkeypatch.setenv("REPRO_SWEEP_KERNEL", name)
        pinned = _sweep(mesh, program, components, 4)
        monkeypatch.delenv("REPRO_SWEEP_KERNEL")
        np.testing.assert_array_equal(
            pinned, reference, err_msg=f"pinned {name} diverges from looped"
        )
        # direct kernel request through the registry
        direct = _sweep(mesh, program, components, 4, kernel=name)
        np.testing.assert_array_equal(direct, reference)


def test_hinted_matches_unhinted_sweep():
    # An installed (empty) table keeps the hinted path from lazily
    # calibrating; with no predictions the policy defers to static order.
    install_table(CostTable(fingerprint={"machine": "synthetic"}))
    mesh = MZIMesh.from_unitary(random_unitary(8, rng=9))
    program, components = _sweep_inputs(mesh, batch=8)
    unhinted = _sweep(mesh, program, components, 8)
    hinted_kernel = select_sweep_kernel(
        HOST_BACKEND, SweepShape(8, 8, program.num_columns, "clements")
    )
    hinted = _sweep(mesh, program, components, 8, kernel=hinted_kernel)
    np.testing.assert_array_equal(hinted, unhinted)


def test_steering_table_flips_choice_but_not_results(monkeypatch):
    target = random_unitary(6, rng=5)
    mesh = MZIMesh.from_unitary(target)
    program = mesh.column_program(HOST_BACKEND)
    shape = SweepShape(6, 1, program.num_columns, "clements")

    monkeypatch.setenv("REPRO_AUTOTUNE", "off")  # baseline: pure static order
    baseline = select_sweep_kernel(HOST_BACKEND, shape)
    assert baseline.name == "fused", "static order picks fused before steering"
    before = mesh.matrix()
    monkeypatch.setenv("REPRO_AUTOTUNE", "on")

    table = CostTable(fingerprint={"machine": "synthetic"})
    # make fused look catastrophically slow at every small shape
    for n in (2, 32):
        for batch in (1, 4096):
            table.record_grid("fused", "clements", n, batch, columns=n, seconds=9e9)
            table.record_grid("looped", "clements", n, batch, columns=n, seconds=1e-9)
    install_table(table)

    steered = select_sweep_kernel(HOST_BACKEND, shape)
    assert steered.name == "looped", "synthetic table must override the static order"
    after = mesh.matrix()
    np.testing.assert_array_equal(after, before)
    np.testing.assert_allclose(after, target, atol=1e-10)


def test_autotune_off_ignores_steering_table(monkeypatch):
    table = CostTable(fingerprint={"machine": "synthetic"})
    table.record_grid("fused", "clements", 6, 1, columns=6, seconds=9e9)
    table.record_grid("looped", "clements", 6, 1, columns=6, seconds=1e-9)
    install_table(table)
    monkeypatch.setenv("REPRO_AUTOTUNE", "off")
    assert select_sweep_kernel(HOST_BACKEND, SweepShape(6, 1, 11)).name == "fused"


def test_pin_beats_steering_table(monkeypatch):
    table = CostTable(fingerprint={"machine": "synthetic"})
    table.record_grid("fused", "clements", 6, 1, columns=6, seconds=9e9)
    table.record_grid("looped", "clements", 6, 1, columns=6, seconds=1e-9)
    install_table(table)
    monkeypatch.setenv("REPRO_SWEEP_KERNEL", "fused")
    assert select_sweep_kernel(HOST_BACKEND, SweepShape(6, 1, 11)).name == "fused"


def test_kernel_availability_probe_memoized():
    from repro.arrays.sweep import _KERNELS

    for name in ("fused", "looped"):
        kernel = _KERNELS[name]
        first = kernel.availability()
        assert kernel.availability() is first, "probe result must be memoized"
        assert first == (True, None)
