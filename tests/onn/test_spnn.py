"""Tests for the system-level SPNN model."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.mesh import LayerPerturbation, MeshPerturbation
from repro.onn import SPNN, SPNNArchitecture
from repro.utils import random_complex_matrix
from repro.variation import UncertaintyModel, sample_network_perturbation


def _small_spnn(compile_hardware=True, seed=0):
    arch = SPNNArchitecture(layer_dims=(6, 5, 4))
    weights = [
        random_complex_matrix(5, 6, rng=seed),
        random_complex_matrix(4, 5, rng=seed + 1),
    ]
    return SPNN(weights, architecture=arch, compile_hardware=compile_hardware), arch


class TestArchitecture:
    def test_defaults_match_paper(self):
        arch = SPNNArchitecture()
        assert arch.layer_dims == (16, 16, 16, 10)
        assert arch.num_linear_layers == 3
        assert arch.weight_shapes() == [(16, 16), (16, 16), (10, 16)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SPNNArchitecture(layer_dims=(16,))
        with pytest.raises(ConfigurationError):
            SPNNArchitecture(layer_dims=(16, 0, 10))
        with pytest.raises(ConfigurationError):
            SPNNArchitecture(softplus_beta=0.0)


class TestConstruction:
    def test_weight_shape_validation(self):
        arch = SPNNArchitecture(layer_dims=(4, 3))
        with pytest.raises(ShapeError):
            SPNN([np.zeros((4, 3), dtype=complex)], architecture=arch)
        with pytest.raises(ConfigurationError):
            SPNN([], architecture=arch)

    def test_deferred_compilation(self):
        spnn, _ = _small_spnn(compile_hardware=False)
        assert not spnn.is_compiled
        with pytest.raises(ConfigurationError):
            spnn.hardware_matrices()
        spnn.compile()
        assert spnn.is_compiled

    def test_hardware_fidelity_after_compile(self):
        spnn, _ = _small_spnn()
        assert spnn.hardware_fidelity() < 1e-8


class TestPaperHardwareInventory:
    def test_phase_shifter_count_matches_paper(self, small_task):
        """The paper's architecture has 687 MZIs = 1374 tunable phase shifters."""
        summary = small_task.spnn.hardware_summary()
        assert summary["total_mzis"] == 687
        assert summary["total_phase_shifters"] == 1374
        assert summary["unitary_mzis"] == 645   # 120+120 +120+120 +45+120
        assert summary["sigma_mzis"] == 42      # 16 + 16 + 10

    def test_unitary_mesh_names(self, small_task):
        names = [name for name, _ in small_task.spnn.unitary_meshes()]
        assert names == ["U_L0", "VH_L0", "U_L1", "VH_L1", "U_L2", "VH_L2"]


class TestForwardPasses:
    def test_software_and_nominal_hardware_agree(self):
        spnn, arch = _small_spnn()
        features = random_complex_matrix(8, arch.input_size, rng=9)
        soft = spnn.forward_software(features)
        hard = spnn.forward_hardware(features)
        assert np.allclose(soft, hard, atol=1e-7)

    def test_output_is_log_probability(self):
        spnn, arch = _small_spnn()
        features = random_complex_matrix(5, arch.input_size, rng=10)
        log_probs = spnn.forward_hardware(features)
        assert log_probs.shape == (5, arch.output_size)
        assert np.allclose(np.exp(log_probs).sum(axis=-1), 1.0)
        assert np.all(log_probs <= 0.0)

    def test_single_sample_input(self):
        spnn, arch = _small_spnn()
        feature = random_complex_matrix(1, arch.input_size, rng=11)[0]
        assert spnn.forward_hardware(feature).shape == (arch.output_size,)

    def test_feature_shape_validation(self):
        spnn, _ = _small_spnn()
        with pytest.raises(ShapeError):
            spnn.forward_hardware(np.zeros((3, 99), dtype=complex))

    def test_perturbations_change_outputs(self):
        spnn, arch = _small_spnn()
        features = random_complex_matrix(10, arch.input_size, rng=12)
        perturbation = sample_network_perturbation(
            spnn.photonic_layers, UncertaintyModel.both(0.05), rng=0
        )
        assert not np.allclose(
            spnn.forward_hardware(features, perturbation), spnn.forward_hardware(features), atol=1e-4
        )

    def test_perturbation_count_validation(self):
        spnn, arch = _small_spnn()
        features = random_complex_matrix(2, arch.input_size, rng=13)
        with pytest.raises(ConfigurationError):
            spnn.forward_hardware(features, [None])  # needs 2 entries

    def test_partial_perturbation_only_affects_target_layer(self):
        spnn, arch = _small_spnn()
        features = random_complex_matrix(4, arch.input_size, rng=14)
        layer0 = spnn.photonic_layers[0]
        perturbation = [
            LayerPerturbation(u=MeshPerturbation(delta_theta=np.full(layer0.mesh_u.num_mzis, 0.3))),
            None,
        ]
        out = spnn.forward_hardware(features, perturbation)
        assert out.shape == (4, arch.output_size)
        assert not np.allclose(out, spnn.forward_hardware(features), atol=1e-5)


class TestPredictionAndAccuracy:
    def test_predict_shape_and_range(self):
        spnn, arch = _small_spnn()
        features = random_complex_matrix(6, arch.input_size, rng=15)
        predictions = spnn.predict(features)
        assert predictions.shape == (6,)
        assert np.all((predictions >= 0) & (predictions < arch.output_size))

    def test_accuracy_bounds_and_validation(self):
        spnn, arch = _small_spnn()
        features = random_complex_matrix(6, arch.input_size, rng=16)
        labels = np.zeros(6, dtype=int)
        accuracy = spnn.accuracy(features, labels)
        assert 0.0 <= accuracy <= 1.0
        with pytest.raises(ShapeError):
            spnn.accuracy(features, np.zeros(5, dtype=int))

    def test_software_accuracy_path(self):
        spnn, arch = _small_spnn()
        features = random_complex_matrix(6, arch.input_size, rng=17)
        labels = spnn.predict(features, use_hardware=False)
        assert spnn.accuracy(features, labels, use_hardware=False) == 1.0

    def test_predict_single_sample_returns_scalar(self):
        """Regression: 1-D features used to yield a spurious (1,) shape."""
        spnn, arch = _small_spnn()
        feature = random_complex_matrix(1, arch.input_size, rng=18)[0]
        prediction = spnn.predict(feature)
        assert np.ndim(prediction) == 0
        assert prediction == spnn.predict(feature[np.newaxis])[0]

    def test_accuracy_accepts_scalar_label(self):
        """Regression: accuracy(features_1d, label_scalar) raised ShapeError."""
        spnn, arch = _small_spnn()
        feature = random_complex_matrix(1, arch.input_size, rng=19)[0]
        prediction = int(spnn.predict(feature))
        assert spnn.accuracy(feature, prediction) == 1.0
        wrong = (prediction + 1) % arch.output_size
        assert spnn.accuracy(feature, wrong) == 0.0

    def test_accuracy_accepts_length_one_labels_for_single_sample(self):
        spnn, arch = _small_spnn()
        feature = random_complex_matrix(1, arch.input_size, rng=20)[0]
        prediction = spnn.predict(feature)
        assert spnn.accuracy(feature, np.array([int(prediction)])) == 1.0

    def test_accuracy_matches_predict(self):
        """The fast modulus-based accuracy path must agree with predict()."""
        spnn, arch = _small_spnn()
        features = random_complex_matrix(24, arch.input_size, rng=21)
        labels = spnn.predict(features)
        assert spnn.accuracy(features, labels) == 1.0
