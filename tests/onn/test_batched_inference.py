"""Tests for the batched SPNN forward / Monte Carlo accuracy path."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.onn import monte_carlo_accuracy, stack_network_perturbations
from repro.utils.rng import spawn_rngs
from repro.variation import UncertaintyModel, sample_network_perturbation, sample_network_perturbation_batch


@pytest.fixture()
def spnn(small_task):
    return small_task.spnn


class TestForwardHardwareBatch:
    def test_equals_stacked_forward_hardware(self, small_task):
        spnn = small_task.spnn
        features = small_task.test_features[:32]
        model = UncertaintyModel.both(0.05)
        realizations = [
            sample_network_perturbation(spnn.photonic_layers, model, g) for g in spawn_rngs(3, 5)
        ]
        batch = stack_network_perturbations(realizations)
        batched = spnn.forward_hardware_batch(features, batch)
        looped = np.stack([spnn.forward_hardware(features, r) for r in realizations])
        assert batched.shape == (5, 32, spnn.architecture.output_size)
        assert np.array_equal(batched, looped)

    def test_nominal_batch_requires_batch_size(self, spnn, small_task):
        features = small_task.test_features[:4]
        with pytest.raises(ValueError):
            spnn.forward_hardware_batch(features, None)
        out = spnn.forward_hardware_batch(features, None, batch_size=2)
        assert out.shape == (2, 4, spnn.architecture.output_size)
        assert np.array_equal(out[0], out[1])

    def test_rejects_wrong_layer_count(self, spnn, small_task):
        with pytest.raises(ConfigurationError):
            spnn.forward_hardware_batch(small_task.test_features[:4], [None])


class TestAccuracyBatch:
    def test_equals_looped_accuracy(self, small_task):
        spnn = small_task.spnn
        features, labels = small_task.test_features[:40], small_task.test_labels[:40]
        model = UncertaintyModel.both(0.05)
        realizations = [
            sample_network_perturbation(spnn.photonic_layers, model, g) for g in spawn_rngs(5, 6)
        ]
        batched = spnn.accuracy_batch(features, labels, stack_network_perturbations(realizations))
        looped = np.array([spnn.accuracy(features, labels, perturbations=r) for r in realizations])
        assert np.array_equal(batched, looped)

    def test_chunking_does_not_change_results(self, small_task):
        spnn = small_task.spnn
        features, labels = small_task.test_features[:24], small_task.test_labels[:24]
        model = UncertaintyModel.both(0.05)
        batch = sample_network_perturbation_batch(spnn.photonic_layers, model, spawn_rngs(2, 7))
        full = spnn.accuracy_batch(features, labels, batch)
        chunked = spnn.accuracy_batch(features, labels, batch, chunk_size=3)
        assert np.array_equal(full, chunked)

    def test_label_validation(self, spnn, small_task):
        features = small_task.test_features[:4]
        with pytest.raises(ShapeError):
            spnn.accuracy_batch(features, np.zeros((2, 2), dtype=int), None, batch_size=1)
        with pytest.raises(ShapeError):
            spnn.accuracy_batch(features, np.zeros(3, dtype=int), None, batch_size=1)
        with pytest.raises(ConfigurationError):
            spnn.accuracy_batch(features[:0], np.zeros(0, dtype=int), None, batch_size=1)


class TestMonteCarloAccuracyVectorized:
    def test_seed_equivalence_with_looped_path(self, small_task):
        """The tentpole guarantee: vectorized == looped, sample for sample."""
        kwargs = dict(
            spnn=small_task.spnn,
            features=small_task.test_features[:50],
            labels=small_task.test_labels[:50],
            model=UncertaintyModel.both(0.05),
            iterations=8,
            rng=42,
        )
        looped = monte_carlo_accuracy(vectorized=False, **kwargs)
        batched = monte_carlo_accuracy(vectorized=True, **kwargs)
        assert np.array_equal(looped, batched)

    def test_chunk_size_does_not_change_samples(self, small_task):
        kwargs = dict(
            spnn=small_task.spnn,
            features=small_task.test_features[:30],
            labels=small_task.test_labels[:30],
            model=UncertaintyModel.both(0.05),
            iterations=6,
            rng=9,
        )
        assert np.array_equal(
            monte_carlo_accuracy(chunk_size=2, **kwargs), monte_carlo_accuracy(**kwargs)
        )

    def test_perturbation_factory_supported(self, small_task):
        calls = []

        def factory(generator):
            calls.append(1)
            return [None] * small_task.spnn.num_linear_layers

        samples = monte_carlo_accuracy(
            small_task.spnn,
            small_task.test_features[:20],
            small_task.test_labels[:20],
            UncertaintyModel.both(0.05),
            iterations=4,
            rng=0,
            perturbation_factory=factory,
            vectorized=True,
        )
        assert len(calls) == 4
        assert np.allclose(samples, samples[0])

    def test_factory_seed_equivalence(self, small_task):
        """Custom samplers get the same bit-identical guarantee."""
        spnn = small_task.spnn
        model = UncertaintyModel.phase_only(0.08)

        def factory(generator):
            return sample_network_perturbation(spnn.photonic_layers, model, generator)

        kwargs = dict(
            spnn=spnn,
            features=small_task.test_features[:25],
            labels=small_task.test_labels[:25],
            model=model,
            iterations=5,
            rng=31,
            perturbation_factory=factory,
        )
        assert np.array_equal(
            monte_carlo_accuracy(vectorized=True, **kwargs),
            monte_carlo_accuracy(vectorized=False, **kwargs),
        )

    def test_chunk_size_validation(self, small_task):
        with pytest.raises(ValueError):
            monte_carlo_accuracy(
                small_task.spnn,
                small_task.test_features[:10],
                small_task.test_labels[:10],
                UncertaintyModel.both(0.05),
                iterations=2,
                rng=0,
                chunk_size=0,
            )


class TestStackNetworkPerturbations:
    def test_all_none_layers_stay_none(self):
        batch = stack_network_perturbations([[None, None], [None, None]])
        assert batch == [None, None]

    def test_rejects_empty_and_ragged(self):
        with pytest.raises(ValueError):
            stack_network_perturbations([])
        with pytest.raises(ShapeError):
            stack_network_perturbations([[None, None], [None]])

    def test_batch_sampler_matches_stacked_looped_samples(self, small_task):
        spnn = small_task.spnn
        model = UncertaintyModel.both(0.05)
        direct = sample_network_perturbation_batch(spnn.photonic_layers, model, spawn_rngs(17, 4))
        stacked = stack_network_perturbations(
            [sample_network_perturbation(spnn.photonic_layers, model, g) for g in spawn_rngs(17, 4)]
        )
        for layer_direct, layer_stacked in zip(direct, stacked):
            assert np.array_equal(layer_direct.u.delta_theta, layer_stacked.u.delta_theta)
            assert np.array_equal(layer_direct.v.delta_r_out, layer_stacked.v.delta_r_out)
            assert np.array_equal(layer_direct.sigma.delta_phi, layer_stacked.sigma.delta_phi)
