"""Tests for the SPNN builder pipeline and Monte Carlo inference helpers."""

import numpy as np
import pytest

from repro.nn import ComplexLinear
from repro.onn import (
    SPNNArchitecture,
    SPNNTrainingConfig,
    build_software_model,
    build_trained_spnn,
    extract_weights,
    hardware_accuracy,
    monte_carlo_accuracy,
    predict_batched,
    spnn_from_model,
)
from repro.variation import UncertaintyModel


class TestSoftwareModelBuilder:
    def test_layer_structure_matches_architecture(self):
        arch = SPNNArchitecture(layer_dims=(16, 16, 16, 10))
        model = build_software_model(arch, rng=0)
        weights = extract_weights(model)
        assert [w.shape for w in weights] == [(16, 16), (16, 16), (10, 16)]

    def test_linear_layer_count(self):
        arch = SPNNArchitecture(layer_dims=(8, 4, 2))
        model = build_software_model(arch, rng=0)
        assert sum(isinstance(m, ComplexLinear) for m in model) == 2

    def test_spnn_from_model_compiles(self):
        arch = SPNNArchitecture(layer_dims=(6, 5, 4))
        model = build_software_model(arch, rng=1)
        spnn = spnn_from_model(model, arch)
        assert spnn.is_compiled
        assert spnn.hardware_fidelity() < 1e-8

    def test_mismatched_crop_rejected(self):
        config = SPNNTrainingConfig(fft_crop=3, num_train=30, num_test=10, epochs=1)
        with pytest.raises(ValueError):
            build_trained_spnn(config)


class TestBuildTrainedSPNN:
    def test_task_contents(self, small_task):
        assert small_task.spnn.is_compiled
        assert small_task.test_features.shape[1] == 16
        assert small_task.num_test_samples == len(small_task.test_labels)
        assert 0.0 <= small_task.baseline_accuracy <= 1.0

    def test_training_learns_something(self, small_task):
        """Even the reduced training run must beat random guessing clearly."""
        assert small_task.baseline_accuracy > 0.5
        assert small_task.history.epochs > 0

    def test_software_and_hardware_agree_on_task(self, small_task):
        soft = small_task.spnn.accuracy(
            small_task.test_features, small_task.test_labels, use_hardware=False
        )
        assert soft == pytest.approx(small_task.baseline_accuracy, abs=1e-9)


class TestMonteCarloAccuracy:
    def test_samples_shape_and_range(self, small_task):
        samples = monte_carlo_accuracy(
            small_task.spnn,
            small_task.test_features[:60],
            small_task.test_labels[:60],
            UncertaintyModel.both(0.05),
            iterations=5,
            rng=0,
        )
        assert samples.shape == (5,)
        assert np.all((samples >= 0) & (samples <= 1))

    def test_reproducible_with_seed(self, small_task):
        kwargs = dict(
            spnn=small_task.spnn,
            features=small_task.test_features[:40],
            labels=small_task.test_labels[:40],
            model=UncertaintyModel.both(0.05),
            iterations=4,
        )
        assert np.allclose(monte_carlo_accuracy(rng=7, **kwargs), monte_carlo_accuracy(rng=7, **kwargs))

    def test_uncertainty_degrades_accuracy(self, small_task):
        """Core paper claim: accuracy under sigma=0.05 is far below nominal."""
        samples = monte_carlo_accuracy(
            small_task.spnn,
            small_task.test_features,
            small_task.test_labels,
            UncertaintyModel.both(0.05),
            iterations=6,
            rng=1,
        )
        assert samples.mean() < small_task.baseline_accuracy - 0.2

    def test_custom_perturbation_factory(self, small_task):
        calls = []

        def factory(generator):
            calls.append(1)
            return [None] * small_task.spnn.num_linear_layers

        samples = monte_carlo_accuracy(
            small_task.spnn,
            small_task.test_features[:30],
            small_task.test_labels[:30],
            UncertaintyModel.both(0.05),
            iterations=3,
            rng=0,
            perturbation_factory=factory,
        )
        assert len(calls) == 3
        assert np.allclose(samples, samples[0])  # ideal hardware every time

    def test_iterations_validation(self, small_task):
        with pytest.raises(ValueError):
            monte_carlo_accuracy(
                small_task.spnn,
                small_task.test_features[:10],
                small_task.test_labels[:10],
                UncertaintyModel.both(0.05),
                iterations=0,
            )


class TestInferenceHelpers:
    def test_hardware_accuracy_matches_spnn_method(self, small_task):
        features, labels = small_task.test_features[:50], small_task.test_labels[:50]
        assert hardware_accuracy(small_task.spnn, features, labels) == pytest.approx(
            small_task.spnn.accuracy(features, labels, use_hardware=True)
        )

    def test_predict_batched_matches_unbatched(self, small_task):
        features = small_task.test_features[:70]
        batched = predict_batched(small_task.spnn, features, batch_size=16)
        direct = small_task.spnn.predict(features)
        assert np.array_equal(batched, direct)

    def test_predict_batched_validation_and_empty(self, small_task):
        with pytest.raises(ValueError):
            predict_batched(small_task.spnn, small_task.test_features[:5], batch_size=0)
        assert predict_batched(small_task.spnn, small_task.test_features[:0]).size == 0
