"""Noise-aware training: harden the SPNN against fabrication variations.

Demonstrates the variation-aware training subsystem end to end:

1. prepare the paper's FFT-feature dataset once,
2. train a **baseline** model with the ordinary software loop and a
   **noise-aware** model with :class:`repro.training.NoiseAwareTrainer`
   (identical data, init and batch order — the only difference is the
   injected hardware noise, scheduled with a sigma curriculum),
3. compile both onto MZI meshes and compare their Monte Carlo hardware
   accuracy at the trained sigma,
4. show a custom schedule and a K-draw sweep for further exploration.

Run with:  python examples/noise_aware_training.py
CLI twin:  spnn-repro robust --smoke
"""

from __future__ import annotations

import time

import numpy as np

from repro.nn import Adam, Trainer, TrainerConfig
from repro.onn import (
    SPNNTrainingConfig,
    build_software_model,
    monte_carlo_accuracy,
    prepare_feature_sets,
    spnn_from_model,
)
from repro.training import (
    NoiseAwareTrainer,
    NoiseInjector,
    PerturbationSchedule,
    process_workspace,
)
from repro.utils.rng import ensure_rng
from repro.variation import UncertaintyModel

TRAIN_SIGMA = 0.0075  # normalized component sigma to harden against
DRAWS = 8             # perturbation draws per minibatch (expected-loss estimator)
ITERATIONS = 100      # Monte Carlo iterations of the final evaluation
CONFIG = SPNNTrainingConfig(num_train=800, num_test=250, epochs=40)


def main() -> None:
    print("preparing the FFT-feature dataset...")
    train_x, train_y, test_x, test_y = prepare_feature_sets(CONFIG)
    architecture = CONFIG.architecture
    trainer_config = TrainerConfig(epochs=CONFIG.epochs, batch_size=CONFIG.batch_size)

    # ------------------------------------------------------------------ #
    # baseline: the paper's ordinary software training
    # ------------------------------------------------------------------ #
    print("training the baseline model...")
    gen = ensure_rng(CONFIG.seed)
    baseline = build_software_model(architecture, rng=gen)
    Trainer(
        baseline, Adam(baseline.parameters(), lr=CONFIG.learning_rate),
        config=trainer_config, rng=gen,
    ).fit(train_x, train_y)

    # ------------------------------------------------------------------ #
    # noise-aware: same seed, loss averaged over K hardware-noise draws
    # ------------------------------------------------------------------ #
    print(f"training the noise-aware model (sigma {TRAIN_SIGMA}, K={DRAWS})...")
    injector = NoiseInjector(
        UncertaintyModel.both(TRAIN_SIGMA),
        draws=DRAWS,
        recompile_every=5,  # recompile the hardware snapshot every 5 steps
        rng=12345,
    )
    # Curriculum: learn the task noise-free first, then harden at 50% and
    # 100% of the target sigma.  Also try PerturbationSchedule.linear_ramp()
    # or PerturbationSchedule.constant() here.
    schedule = PerturbationSchedule.curriculum((0.0, 0.0, 0.5, 1.0))
    print(
        f"  sigma scale steps at epochs {schedule.change_epochs(CONFIG.epochs)} "
        "(each boundary re-draws/rescales the amortized noise cache)"
    )
    gen = ensure_rng(CONFIG.seed)
    robust = build_software_model(architecture, rng=gen)
    start = time.perf_counter()
    # The three performance knobs (all opt-in, what EXP 3 runs with):
    #   incremental_recompile — warm-start the SVD/Clements snapshot in
    #     place instead of decomposing from scratch (exact fallback on
    #     drift),
    #   reuse_draws — draw the K offset batches once per recompile window
    #     and reuse them across its steps (schedule-aware rescaling),
    #   workspace — share one scratch-buffer arena across the stacked
    #     (K·B, ...) kernels.
    # Together they cut the noise-aware step ~3.5-4x at this scale; drop
    # them (the defaults) for the original bit-stable per-step-draw path.
    NoiseAwareTrainer(
        robust, Adam(robust.parameters(), lr=CONFIG.learning_rate),
        injector, schedule=schedule, config=trainer_config, rng=gen,
        incremental_recompile=True,
        reuse_draws=True,
        workspace=process_workspace(),
    ).fit(train_x, train_y)
    print(f"  noise-aware training took {time.perf_counter() - start:.1f}s")

    # ------------------------------------------------------------------ #
    # characterize both as hardware, exactly like EXP 1
    # ------------------------------------------------------------------ #
    print(f"evaluating Monte Carlo hardware accuracy at sigma {TRAIN_SIGMA}...")
    model = UncertaintyModel.both(TRAIN_SIGMA)
    results = {}
    for name, software in (("baseline", baseline), ("noise-aware", robust)):
        spnn = spnn_from_model(software, architecture)
        nominal = spnn.accuracy(test_x, test_y, use_hardware=True)
        samples = monte_carlo_accuracy(
            spnn, test_x, test_y, model, iterations=ITERATIONS, rng=99
        )
        results[name] = (nominal, samples)
        print(
            f"  {name:12s} nominal {100 * nominal:6.2f}%   "
            f"under variations {100 * samples.mean():6.2f}% "
            f"(+/- {100 * samples.std():.2f}%)"
        )

    recovery = results["noise-aware"][1].mean() - results["baseline"][1].mean()
    print(f"\naccuracy recovered by noise-aware training: {100 * recovery:+.2f}%")
    print("full experiment (several sigmas + yield sweep): spnn-repro robust --smoke")


if __name__ == "__main__":
    main()
