"""System-level study: SPNN accuracy under global uncertainties (Fig. 4 / EXP 1).

Trains the paper's 16-16-16-10 complex-valued SPNN on the synthetic MNIST
substitute, compiles it onto MZI meshes, sweeps the uncertainty level sigma
for the three component cases (PhS only, BeS only, both) and prints the
accuracy-vs-sigma series together with the paper's headline comparisons.

Run with:        python examples/global_uncertainty_study.py
Paper scale:     python examples/global_uncertainty_study.py --full
(The full-scale run uses 1000 Monte Carlo iterations per point and takes
correspondingly longer.)
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import Exp1Config, run_exp1
from repro.onn import SPNNTrainingConfig, build_trained_spnn


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use paper-scale Monte Carlo settings")
    parser.add_argument("--iterations", type=int, default=None, help="override MC iterations per point")
    args = parser.parse_args()

    iterations = args.iterations if args.iterations is not None else (1000 if args.full else 40)
    training = SPNNTrainingConfig() if args.full else SPNNTrainingConfig(num_train=1500, num_test=500, epochs=40)

    print("training the software SPNN and compiling it onto MZI meshes ...")
    start = time.time()
    task = build_trained_spnn(training)
    print(
        f"done in {time.time() - start:.1f}s — nominal (uncertainty-free) hardware accuracy: "
        f"{100 * task.baseline_accuracy:.2f}%"
    )
    print("hardware inventory:", task.spnn.hardware_summary())

    config = Exp1Config(
        sigmas=(0.0, 0.005, 0.01, 0.025, 0.05, 0.075, 0.1, 0.15),
        iterations=iterations,
        training=training,
    )
    print(f"\nrunning EXP 1 with {iterations} Monte Carlo iterations per (case, sigma) point ...")
    start = time.time()
    result = run_exp1(config, task=task)
    print(f"finished in {time.time() - start:.1f}s\n")
    print(result.report())

    print("\npaper-shape summary:")
    print(f"  accuracy loss at sigma=0.05 (both): {100 * result.loss_at_sigma('both', 0.05):.1f}%  (paper: 69.98%)")
    print(f"  sigma where accuracy falls below 10%: {result.saturation_sigma('both')}  (paper: ~0.075)")
    phs_mid = result.mean_accuracy("phs")[4]
    bes_mid = result.mean_accuracy("bes")[4]
    print(
        f"  at sigma=0.05, PhS-only accuracy {100 * phs_mid:.1f}% vs BeS-only {100 * bes_mid:.1f}% "
        "(paper: PhS uncertainties dominate)"
    )


if __name__ == "__main__":
    main()
