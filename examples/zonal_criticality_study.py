"""Critical-component identification: zonal perturbations (Fig. 5 / EXP 2)
and per-MZI RVD ranking (Fig. 3).

This example demonstrates the paper's stated purpose — identifying, before
fabrication, which devices and regions of an SPNN are most damaging when
they drift:

1. layer level: compile random unitaries onto Clements meshes, perturb one
   MZI at a time and rank devices by average RVD (Fig. 3);
2. system level: train/compile the full SPNN, elevate the uncertainty of one
   2x2-MZI zone at a time (zone sigma 0.1, background 0.05) and rank zones
   of a chosen unitary multiplier by mean accuracy loss (Fig. 5).

Run with:  python examples/zonal_criticality_study.py [--mesh VH_L2] [--iterations 15]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.analysis import per_mzi_rvd_criticality
from repro.experiments import Exp2Config, run_exp2
from repro.mesh import MZIMesh
from repro.onn import SPNNTrainingConfig, build_trained_spnn
from repro.utils import random_unitary
from repro.variation import UncertaintyModel


def layer_level_ranking() -> None:
    print("=== layer level: per-MZI criticality of a 5x5 unitary (Fig. 3) ===")
    mesh = MZIMesh.from_unitary(random_unitary(5, rng=42))
    report = per_mzi_rvd_criticality(mesh, UncertaintyModel.both(0.05), iterations=200, rng=0)
    print("average RVD per MZI:", np.round(report.as_array(), 3))
    worst = report.most_critical(3)
    best = report.least_critical(1)[0]
    print(
        "most critical MZIs (1-indexed):",
        [c.identifier + 1 for c in worst],
        "| least critical:",
        best.identifier + 1,
    )
    print(f"criticality spread (max - min average RVD): {report.spread:.3f}\n")


def system_level_ranking(mesh_name: str, iterations: int) -> None:
    print(f"=== system level: zonal accuracy loss on {mesh_name} (Fig. 5 / EXP 2) ===")
    training = SPNNTrainingConfig(num_train=1200, num_test=400, epochs=35)
    print("training + compiling the SPNN ...")
    start = time.time()
    task = build_trained_spnn(training)
    print(f"done in {time.time() - start:.1f}s, nominal accuracy {100 * task.baseline_accuracy:.1f}%")

    config = Exp2Config(iterations=iterations, training=training)
    start = time.time()
    result = run_exp2(config, task=task, mesh_names=[mesh_name])
    print(f"EXP 2 on {mesh_name} finished in {time.time() - start:.1f}s\n")
    print(result.report())

    heatmap = result.heatmaps[mesh_name]
    print(f"\n{mesh_name} accuracy-loss heatmap [%] (2x2-MZI zones; NaN = empty zone):")
    with np.printoptions(precision=1, suppress=True, nanstr="  . "):
        print(100 * heatmap.accuracy_loss)

    finite = np.argwhere(np.isfinite(heatmap.accuracy_loss))
    losses = heatmap.accuracy_loss[np.isfinite(heatmap.accuracy_loss)]
    worst_zone = finite[np.argmax(losses)]
    best_zone = finite[np.argmin(losses)]
    print(
        f"\nmost critical zone (row, col) = {tuple(worst_zone)} with {100 * losses.max():.1f}% loss; "
        f"most forgiving zone = {tuple(best_zone)} with {100 * losses.min():.1f}% loss; "
        f"global-uncertainty reference loss {100 * result.global_loss:.1f}%"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mesh", default="VH_L2", help="unitary multiplier to scan (U_L0 ... VH_L2)")
    parser.add_argument("--iterations", type=int, default=15, help="Monte Carlo iterations per zone")
    args = parser.parse_args()
    layer_level_ranking()
    system_level_ranking(args.mesh, args.iterations)


if __name__ == "__main__":
    main()
