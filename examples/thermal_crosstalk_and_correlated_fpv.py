"""Extension study: explicit thermal crosstalk and spatially-correlated FPV.

The paper folds both effects into independent Gaussian perturbations.  This
example uses the library's explicit physical models to show (a) how much
systematic phase error neighbouring heaters induce on a compiled mesh, and
(b) how spatial correlation in fabrication-process variations changes the
spread of the layer-level deviation (RVD) compared to the independent model.

Run with:  python examples/thermal_crosstalk_and_correlated_fpv.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import rvd, summarize
from repro.mesh import MZIMesh
from repro.utils import random_unitary
from repro.utils.serialization import format_table
from repro.variation import (
    CorrelatedFPVModel,
    ThermalCrosstalkModel,
    UncertaintyModel,
    sample_mesh_perturbation,
)


def thermal_crosstalk_study(mesh: MZIMesh) -> None:
    print("=== thermal crosstalk between neighbouring heaters ===")
    rows = []
    for coupling in (0.01, 0.03, 0.05):
        model = ThermalCrosstalkModel(coupling=coupling)
        stats = model.phase_error_statistics(mesh)
        deviation = rvd(mesh.matrix(model.perturbation(mesh)), mesh.ideal_matrix())
        rows.append([coupling, stats["mean"], stats["max"], deviation])
    print(format_table(["coupling", "mean dphi [rad]", "max dphi [rad]", "RVD"], rows))
    print("(compare with the ~0.21 rad random phase error of a mature process, paper §III-A)\n")


def correlated_fpv_study(mesh: MZIMesh, samples: int = 150) -> None:
    print("=== independent vs spatially-correlated fabrication variations ===")
    uncertainty = UncertaintyModel.both(0.05)
    reference = mesh.ideal_matrix()
    rows = []
    for label, correlation_length in (("independent", 1e-6), ("correlated (L=2)", 2.0), ("correlated (L=4)", 4.0)):
        fpv = CorrelatedFPVModel(correlation_length=correlation_length)
        values = [
            rvd(mesh.matrix(fpv.sample_mesh_perturbation(mesh, uncertainty, rng=seed)), reference)
            for seed in range(samples)
        ]
        summary = summarize(values)
        rows.append([label, summary.mean, summary.std, summary.maximum])
    print(format_table(["variation model", "mean RVD", "std RVD", "max RVD"], rows))
    print(
        "\nwith identical per-device sigmas, spatial correlation changes the spread of outcomes —\n"
        "the tail of bad chips grows even though the average stays comparable."
    )


def independent_gaussian_reference(mesh: MZIMesh, samples: int = 150) -> None:
    print("\n=== reference: the paper's independent Gaussian model ===")
    uncertainty = UncertaintyModel.both(0.05)
    reference = mesh.ideal_matrix()
    values = [
        rvd(mesh.matrix(sample_mesh_perturbation(mesh, uncertainty, rng=seed)), reference)
        for seed in range(samples)
    ]
    summary = summarize(values)
    print(
        f"mean RVD {summary.mean:.3f} +/- {summary.margin_of_error:.3f} "
        f"(95% CI over {samples} Monte Carlo draws)"
    )


def main() -> None:
    mesh = MZIMesh.from_unitary(random_unitary(8, rng=7))
    print(f"compiled an 8x8 unitary onto {mesh.num_mzis} MZIs ({mesh.num_columns} columns)\n")
    thermal_crosstalk_study(mesh)
    correlated_fpv_study(mesh)
    independent_gaussian_reference(mesh)


if __name__ == "__main__":
    main()
