"""Autotune tour: calibrate the kernel cost table, watch it steer dispatch.

Walks the whole ``repro.tuning`` loop on the host backend:

1. run the one-shot calibration micro-benchmark (the same measurement
   ``spnn-repro calibrate`` persists under ``~/.cache/spnn-repro/``; here
   it goes to a temp cache so the tour never touches your real one),
2. inspect the fitted cost table — per-kernel grid timings, the machine
   fingerprint that keys the cache file, and interpolated predictions at
   shapes *between* the calibrated points,
3. dispatch hinted sweeps through ``select_sweep_kernel`` and show which
   kernel the table picks per shape (with the static order alongside),
4. verify the load-bearing invariant: steering is bit-identical — the
   table changes *which* kernel runs, never the numbers,
5. run a traced sweep and show the observed-cost feedback loop: live
   dispatch timings land in ``CostTable.observe`` and refine the grid.

Run with:  python examples/autotune_tour.py
CLI twin:  spnn-repro calibrate && spnn-repro info
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.arrays import HOST_BACKEND
from repro.arrays.sweep import SweepShape, select_sweep_kernel
from repro.mesh.mesh import MZIMesh
from repro.tuning import (
    cache_path,
    fingerprint_digest,
    install_table,
    reset_tuning_state,
    run_calibration,
    tuning_status,
)
from repro.utils import random_unitary

PROBE_SHAPES = ((8, 1), (8, 64), (12, 500), (32, 2048))  # (n, batch)


def main() -> None:
    os.environ["REPRO_AUTOTUNE"] = "on"
    reset_tuning_state()

    # 1. calibrate (≈3 s: every kernel × a small (scheme, n, batch) grid)
    print("calibrating the sweep-kernel cost table ...")
    table = run_calibration(progress=lambda line: print(f"  {line}"))

    # 2. inspect — what `spnn-repro calibrate` would persist
    digest = fingerprint_digest(table.fingerprint)
    print(f"\nmachine fingerprint digest: {digest}")
    print(f"cache file would be: {cache_path(table.fingerprint)}")
    print(f"grid points per kernel: { {k: len(v) for k, v in table.grid.items()} }")
    print("\ninterpolated per-sweep predictions (seconds):")
    for n, batch in PROBE_SHAPES:
        row = {
            kernel: table.predict(kernel, n, batch, columns=n, scheme="clements")
            for kernel in table.kernels()
        }
        rendered = ", ".join(f"{k}={v:.2e}" for k, v in row.items() if v is not None)
        print(f"  n={n:<3} batch={batch:<5} {rendered}")

    # 3. hinted dispatch — the table only overrides where it measured a win
    with tempfile.TemporaryDirectory() as cache_home:
        os.environ["XDG_CACHE_HOME"] = cache_home  # keep the real cache clean
        reset_tuning_state()
        install_table(table)
        print("\nhinted kernel choice per shape (static order head: fused):")
        for n, batch in PROBE_SHAPES:
            chosen = select_sweep_kernel(HOST_BACKEND, SweepShape(n, batch, n))
            print(f"  n={n:<3} batch={batch:<5} -> {chosen.name}")

        # 4. bit-identity: steering never changes the numbers
        mesh = MZIMesh.from_unitary(random_unitary(8, rng=11))
        hinted = mesh.matrix()  # threads SweepShape(8, 1, ...) internally
        os.environ["REPRO_AUTOTUNE"] = "off"
        static = mesh.matrix()
        os.environ["REPRO_AUTOTUNE"] = "on"
        assert np.array_equal(hinted, static), "steering must be bit-identical"
        print("\nhinted matrix() bit-identical to static dispatch: True")

        # 5. the feedback loop: live hinted dispatches refine the table
        before = sum(len(shapes) for shapes in table.observed.values())
        for _ in range(3):
            mesh.matrix()
        after = sum(len(shapes) for shapes in table.observed.values())
        print(f"observed-cost shapes: {before} -> {after} (live EWMA refinement)")

        status = tuning_status()
        print(f"tuning status: enabled={status['enabled']} loaded={status['loaded']} "
              f"observed_shapes={status['observed_shapes']}")

    reset_tuning_state()
    print("\ndone — `spnn-repro calibrate` persists this table for real runs.")


if __name__ == "__main__":
    main()
