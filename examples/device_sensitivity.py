"""Device-level sensitivity sweep (Fig. 2): |dT_ij|/|T_ij| over (theta, phi).

Computes the first-order relative deviation of the four MZI transfer-matrix
elements under a common relative phase error K = 0.05 and prints a coarse
ASCII rendering of each surface plus the per-element peaks — the content of
the paper's Fig. 2 without needing a plotting backend.

Run with:  python examples/device_sensitivity.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ELEMENT_LABELS
from repro.experiments import Fig2Config, run_fig2

#: Characters used for the coarse ASCII heatmap, from low to high.
SHADES = " .:-=+*#%@"


def ascii_heatmap(surface: np.ndarray, bins: int = 10) -> str:
    finite = surface[np.isfinite(surface)]
    low, high = finite.min(), np.quantile(finite, 0.98)
    lines = []
    for row in surface:
        chars = []
        for value in row:
            if not np.isfinite(value):
                chars.append("!")
                continue
            level = int(np.clip((value - low) / max(high - low, 1e-12) * (bins - 1), 0, bins - 1))
            chars.append(SHADES[level])
        lines.append("".join(chars))
    return "\n".join(lines)


def main() -> None:
    result = run_fig2(Fig2Config(grid_points=32, k=0.05))
    print(result.report())
    print("\nASCII surfaces (theta increases downwards, phi to the right; '!' marks |T_ij| = 0):")
    for label in ELEMENT_LABELS:
        surface = result.sensitivity.element_by_label(label)
        print(f"\n--- {label}:  |d{label}|/|{label}|,  peak = {result.peak_deviation[label]:.2f} ---")
        print(ascii_heatmap(surface))
    print(
        "\nTakeaway (paper Fig. 2): the relative deviation grows monotonically with the tuned\n"
        "phase angles — MZIs programmed to large theta/phi are intrinsically more fragile."
    )


if __name__ == "__main__":
    main()
