"""The column-sweep kernel registry: selection, conformance and the fused win.

This walkthrough exercises :mod:`repro.arrays`' sweep-kernel registry on a
paper-plus-size Clements mesh: it lists which kernels are available in this
environment, checks every one of them against the ``looped`` reference on
the same packed column program (host kernels bit for bit), and then times
the ``looped`` vs ``fused`` kernels head to head in the megakernel regime —
one whole perturbation batch per call, the shape every sigma-folded Monte
Carlo sweep produces.

It degrades gracefully on machines without the optional accelerators: no
numba means the ``numba`` kernel reports unavailable (and is skipped, not
failed); no CuPy means the same for ``cupy_raw``.  The ``looped`` and
``fused`` kernels are pure NumPy and always present — the registry's
guarantee is that *some* conformant kernel always serves the sweep.

Run::

    PYTHONPATH=src python examples/fused_mesh_benchmark.py [--smoke]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.arrays import (  # noqa: E402
    HOST_BACKEND,
    apply_column_sweep,
    available_sweep_kernels,
    get_sweep_kernel,
    select_sweep_kernel,
    sweep_kernel_names,
)
from repro.mesh.mesh import MZIMesh  # noqa: E402
from repro.utils import random_unitary  # noqa: E402
from repro.utils.rng import spawn_rngs  # noqa: E402
from repro.variation import UncertaintyModel  # noqa: E402
from repro.variation.sampler import sample_mesh_perturbation_batch  # noqa: E402


def build_sweep_inputs(n: int, batch: int, seed: int = 3):
    """Mesh, packed column program and column-sorted component stacks."""
    mesh = MZIMesh.from_unitary(random_unitary(n, rng=seed), scheme="clements")
    perturbation = sample_mesh_perturbation_batch(
        mesh, UncertaintyModel.both(0.01), spawn_rngs(seed + 1, batch)
    )
    components, _ = mesh._blocks_and_phases(perturbation, HOST_BACKEND)
    program = mesh.column_program(HOST_BACKEND)
    sorted_components = tuple(c[..., program.perm] for c in components)
    eye = np.broadcast_to(np.eye(n, dtype=np.complex128), (batch, n, n))
    return program, sorted_components, eye


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, fast configuration")
    args = parser.parse_args(argv)

    n, batch, repeats = (16, 128, 1) if args.smoke else (32, 2048, 3)

    print("sweep-kernel registry:")
    available = available_sweep_kernels(HOST_BACKEND)
    for name in sweep_kernel_names():
        kernel = get_sweep_kernel(name)
        if not kernel.available():
            status = "unavailable (optional dependency missing) — skipped"
        elif not kernel.supports(HOST_BACKEND):
            status = "available, serves a device backend only"
        else:
            status = "available on the host backend"
        print(f"  {name:9s} {status}")
    selected = select_sweep_kernel(HOST_BACKEND)
    print(f"selected for the host backend: {selected.name!r} "
          f"(override with REPRO_SWEEP_KERNEL=<{'|'.join(available)}>)")

    print(f"\nconformance on a {n}x{n} Clements mesh, batch={batch}:")
    program, components, eye = build_sweep_inputs(n, batch)
    reference = np.asarray(eye).copy()
    apply_column_sweep(HOST_BACKEND, reference, components, program, kernel="looped")
    for name in available:
        if not get_sweep_kernel(name).supports(HOST_BACKEND):
            continue
        result = np.asarray(eye).copy()
        apply_column_sweep(HOST_BACKEND, result, components, program, kernel=name)
        assert np.array_equal(result, reference), f"{name} diverged from the reference"
        print(f"  {name:9s} BIT-IDENTICAL to the looped reference")

    print(f"\nmegakernel timing (whole batch per call, best of {repeats}):")
    work = np.empty((batch, n, n), dtype=np.complex128)
    seconds = {}
    for name in ("looped", "fused"):
        best = float("inf")
        for _ in range(repeats + 1):  # one extra pass warms the column plan
            work[...] = eye
            start = time.perf_counter()
            apply_column_sweep(HOST_BACKEND, work, components, program, kernel=name)
            best = min(best, time.perf_counter() - start)
        seconds[name] = best
        print(f"  {name:9s} {best * 1e3:8.1f} ms")
    print(f"  fused speedup: {seconds['looped'] / seconds['fused']:.2f}x")
    if not args.smoke and seconds["looped"] / seconds["fused"] < 2.0:
        print("  (below the 2x acceptance floor — shared/loaded machine?)")

    print("\nThe same registry serves every mesh sweep implicitly:")
    print("  mesh.matrix_batch(...)        # selects the best available kernel")
    print("  REPRO_SWEEP_KERNEL=looped ... # pin the reference kernel")
    return 0


if __name__ == "__main__":
    sys.exit(main())
