"""Observability tour: trace a yield sweep, then read the story it tells.

Walks the whole telemetry pipeline on a real (small) trained SPNN:

1. train + compile the paper's 16-16-16-10 SPNN (small corpus for speed),
2. run a sharded yield sweep inside ``observe()`` — spans around the sweep
   and its folded Monte Carlo pass, one telemetry frame per worker chunk,
   per-shape kernel-dispatch totals from the column-sweep registry,
3. verify the load-bearing invariant: the traced samples are bit-identical
   to an untraced run at the same seed,
4. aggregate everything into a MetricsReport and print it — where the
   wall-clock went, which kernels dispatched on which shapes, how the
   chunk schedule looked, how evenly the workers were loaded,
5. round-trip the trace through JSONL and summarize it offline, exactly
   what ``spnn-repro yield --trace trace.jsonl --metrics-out m.json`` does.

Run with:  python examples/observability_tour.py
CLI twin:  spnn-repro yield --smoke --workers 2 --trace trace.jsonl \
               --metrics-out metrics.json --progress
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.analysis import yield_sweep
from repro.observability import MetricsReport, observe, summarize_trace
from repro.onn import SPNNTrainingConfig, build_trained_spnn

SIGMAS = (0.0, 0.01, 0.025, 0.05)
ITERATIONS = 100  # the paper uses 1000; reduced so the example stays snappy
WORKERS = 2


def main() -> None:
    print("training + compiling the SPNN (small corpus)...")
    task = build_trained_spnn(SPNNTrainingConfig(num_train=800, num_test=250, epochs=30))
    kwargs = dict(sigmas=SIGMAS, iterations=ITERATIONS, rng=13)

    print("untraced reference run...")
    reference = yield_sweep(task.spnn, task.test_features, task.test_labels, **kwargs)

    print(f"traced run ({WORKERS} workers)...")
    with observe() as recorder:
        traced = yield_sweep(
            task.spnn, task.test_features, task.test_labels, workers=WORKERS, **kwargs
        )

    # Tracing never changes results — the samples are bit-identical.
    for sigma in SIGMAS:
        assert np.array_equal(
            reference.accuracy_samples[sigma], traced.accuracy_samples[sigma]
        )
    print("bit-identity confirmed: traced samples == untraced samples\n")

    report = MetricsReport.from_recorder(recorder)
    print(report.render())

    # The frames reconstruct exactly the chunk schedule the engine planned.
    schedule = report.chunk_schedule(label="yield")
    print(f"\nchunk schedule (start, count): {schedule}")

    # The same report can be built offline, long after the run: export the
    # raw trace as JSONL and summarize the file.
    with tempfile.TemporaryDirectory() as scratch:
        trace_path = os.path.join(scratch, "trace.jsonl")
        recorder.write_jsonl(trace_path)
        offline = summarize_trace(trace_path)
        assert offline == report.render()
        print(f"\nJSONL round-trip verified ({trace_path} re-aggregated identically)")


if __name__ == "__main__":
    main()
