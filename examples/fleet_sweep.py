"""Distributed fleet sweep: persistent workers + the spec-hash artifact cache.

Demonstrates the fleet execution backend end to end, on localhost:

1. train + compile the paper's 16-16-16-10 SPNN (small corpus for speed),
2. stand up a coordinator plus two persistent worker processes
   (:func:`repro.execution.local_fleet` — the same topology as
   ``spnn-repro yield --fleet HOST:PORT`` with two
   ``spnn-repro worker --connect HOST:PORT`` processes),
3. run a yield sweep over the fleet **twice**: the cold request pushes the
   content-addressed blobs (compiled network parameters, eval arrays, the
   pickled trial) to each worker once; the warm repeat ships only digests
   and per-chunk seed recipes — watch ``request_log`` count the bytes,
4. verify the bit-identity guarantee: fleet samples equal the serial
   samples exactly, whatever the fleet size or cache state,
5. trace the warm run and read the per-host worker load balance from
   :attr:`repro.observability.MetricsReport.worker_imbalance`.

Run with:  python examples/fleet_sweep.py
CLI twin:  spnn-repro worker --connect 127.0.0.1:7461  (x2, then)
           spnn-repro yield --smoke --fleet 127.0.0.1:7461
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import yield_sweep
from repro.execution import local_fleet
from repro.observability import MetricsReport, observe
from repro.onn import SPNNTrainingConfig, build_trained_spnn

SIGMAS = (0.0, 0.01, 0.025, 0.05)
ITERATIONS = 100  # the paper uses 1000; reduced so the example stays snappy
WORKERS = 2


def _wire_bytes(entries) -> int:
    return sum(e["task_bytes"] + e["fn_bytes"] + e["artifact_bytes"] for e in entries)


def main() -> None:
    print("training + compiling the SPNN (small corpus)...")
    task = build_trained_spnn(SPNNTrainingConfig(num_train=800, num_test=250, epochs=30))
    kwargs = dict(sigmas=SIGMAS, iterations=ITERATIONS, rng=13)

    print("serial reference run...")
    serial = yield_sweep(task.spnn, task.test_features, task.test_labels, **kwargs)

    print(f"starting a localhost fleet: coordinator + {WORKERS} workers...")
    with local_fleet(workers=WORKERS) as fleet:
        print(f"coordinator bound at {fleet.address}; workers connected\n")

        start = time.perf_counter()
        cold = yield_sweep(
            task.spnn, task.test_features, task.test_labels, backend=fleet, **kwargs
        )
        cold_seconds = time.perf_counter() - start
        cold_requests = list(fleet.request_log)
        print(
            f"cold run: {cold_seconds:.1f}s, {len(cold_requests)} requests, "
            f"{_wire_bytes(cold_requests):,} wire bytes "
            f"({sum(e['artifact_bytes'] for e in cold_requests):,} of them "
            f"content-addressed artifacts, pushed once per worker)"
        )

        start = time.perf_counter()
        with observe() as recorder:
            warm = yield_sweep(
                task.spnn, task.test_features, task.test_labels, backend=fleet, **kwargs
            )
        warm_seconds = time.perf_counter() - start
        warm_requests = fleet.request_log[len(cold_requests):]
        print(
            f"warm run: {warm_seconds:.1f}s, {len(warm_requests)} requests, "
            f"{_wire_bytes(warm_requests):,} wire bytes "
            f"({sum(e['artifact_bytes'] for e in warm_requests):,} artifact bytes "
            f"— a warm spec travels as hashes + seed recipes)"
        )

    # Bit-identity: the fleet is purely a wall-clock/topology knob.
    for sigma in SIGMAS:
        assert np.array_equal(serial.accuracy_samples[sigma], cold.accuracy_samples[sigma])
        assert np.array_equal(serial.accuracy_samples[sigma], warm.accuracy_samples[sigma])
    print("bit-identity confirmed: cold == warm == serial samples\n")

    # The chunk frames are host-stamped, so the load-balance report groups
    # by machine — on localhost there is one host, in a real fleet one
    # entry per box.
    report = MetricsReport.from_recorder(recorder)
    print(report.render())
    print(f"\nper-host worker imbalance (max/mean busy ratio): {report.worker_imbalance}")


if __name__ == "__main__":
    main()
