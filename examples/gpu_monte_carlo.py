"""GPU-backed Monte Carlo: the ``--device gpu`` execution path, end to end.

This walkthrough runs the paper's Monte Carlo accuracy study through the
device-resident execution backend (:class:`repro.execution.GpuBackend`):
perturbations are sampled into device buffers (draws still come from the
host NumPy streams, so seeds mean the same thing everywhere), the MZI mesh
sweeps and the network forward run on the device namespace, and only the
per-chunk accuracy samples are transferred back to the host at reassembly.

It degrades gracefully on machines without CuPy/CUDA: the strict mock
device backend stands in — same kernels, NumPy arithmetic underneath, full
device-semantics enforcement — so the run demonstrates (and checks) the
exact execution path a GPU would take, with **bit-identical** results to
the CPU engine.  On a real GPU the results match the CPU run to
``allclose`` at the same seed (the documented tolerance contract: the
sampled values are identical, only the device's floating-point reduction
order differs).

Run::

    PYTHONPATH=src python examples/gpu_monte_carlo.py [--smoke]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.arrays import available_array_backends  # noqa: E402
from repro.execution import GpuBackend, default_gpu_array_backend  # noqa: E402
from repro.onn import SPNNArchitecture, SPNNTrainingConfig, build_trained_spnn  # noqa: E402
from repro.onn.inference import monte_carlo_accuracy  # noqa: E402
from repro.variation import UncertaintyModel  # noqa: E402


def pick_array_backend() -> str:
    """CuPy when usable, otherwise the strict mock device stand-in."""
    preferred = default_gpu_array_backend()
    available = available_array_backends()
    if preferred in available:
        return preferred
    print(
        f"[gpu example] array backend {preferred!r} is not available here "
        f"(no CuPy/CUDA); falling back to the strict 'mock_device' stand-in.\n"
        f"[gpu example] available array backends: {', '.join(available)}"
    )
    return "mock_device"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, fast configuration")
    parser.add_argument("--iterations", type=int, default=None, help="MC iterations")
    args = parser.parse_args(argv)

    iterations = args.iterations or (64 if args.smoke else 400)
    training = SPNNTrainingConfig(
        architecture=SPNNArchitecture(layer_dims=(16, 16, 16, 10)),
        num_train=600 if args.smoke else 1500,
        num_test=200 if args.smoke else 400,
        epochs=20 if args.smoke else 40,
        seed=2021,
    )

    print("training + compiling the SPNN ...")
    task = build_trained_spnn(training)
    features = task.test_features[:64]  # engine-dominated subset
    labels = task.test_labels[:64]
    model = UncertaintyModel.both(0.01)

    array_backend = pick_array_backend()
    backend = GpuBackend(array_backend=array_backend)
    print(f"device backend: GpuBackend(array_backend={array_backend!r})")

    start = time.perf_counter()
    cpu_samples = monte_carlo_accuracy(
        task.spnn, features, labels, model, iterations=iterations, rng=7
    )
    cpu_seconds = time.perf_counter() - start

    start = time.perf_counter()
    device_samples = monte_carlo_accuracy(
        task.spnn, features, labels, model, iterations=iterations, rng=7, backend=backend
    )
    device_seconds = time.perf_counter() - start

    print(f"CPU engine:    {iterations} realizations in {cpu_seconds:.2f}s, "
          f"mean accuracy {cpu_samples.mean():.4f}")
    print(f"device engine: {iterations} realizations in {device_seconds:.2f}s, "
          f"mean accuracy {device_samples.mean():.4f}")

    if array_backend == "mock_device":
        # The mock backend's arithmetic is NumPy's — exact equality is the
        # conformance contract, and also what proves no silent host fallback.
        assert np.array_equal(cpu_samples, device_samples), "mock device must be bit-identical"
        print("mock device results are BIT-IDENTICAL to the CPU engine (as contracted)")
    else:
        assert np.allclose(cpu_samples, device_samples, rtol=1e-9, atol=1e-12)
        print("GPU results match the CPU engine to allclose (documented tolerance contract)")

    print("\nSame thing from the CLI:")
    print("  spnn-repro yield --smoke --device gpu")
    print("  REPRO_GPU_ARRAY_BACKEND=mock_device spnn-repro yield --smoke --device gpu")
    return 0


if __name__ == "__main__":
    sys.exit(main())
