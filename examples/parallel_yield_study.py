"""Parallel yield study: sharded Monte Carlo + the §I yield motivation.

Demonstrates the execution layer end to end:

1. train + compile the paper's 16-16-16-10 SPNN (small corpus for speed),
2. sweep the uncertainty level and estimate the parametric yield at each,
   sharding the 1000-realization Monte Carlo runs across worker processes,
3. verify the bit-identity guarantee: the sharded samples equal the serial
   samples exactly, so worker count is purely a wall-clock knob.

Run with:  python examples/parallel_yield_study.py
CLI twin:  spnn-repro yield --smoke --workers 2
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import yield_sweep
from repro.execution import available_workers
from repro.onn import SPNNTrainingConfig, build_trained_spnn

SIGMAS = (0.0, 0.01, 0.025, 0.05, 0.1)
ITERATIONS = 200  # the paper uses 1000; reduced so the example stays snappy


def main() -> None:
    print("training + compiling the SPNN (small corpus)...")
    task = build_trained_spnn(SPNNTrainingConfig(num_train=800, num_test=250, epochs=30))

    workers = min(4, available_workers())
    print(f"running the yield sweep serially and with {workers} worker(s)...")

    start = time.perf_counter()
    serial = yield_sweep(
        task.spnn, task.test_features, task.test_labels,
        sigmas=SIGMAS, iterations=ITERATIONS, rng=13,
    )
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sharded = yield_sweep(
        task.spnn, task.test_features, task.test_labels,
        sigmas=SIGMAS, iterations=ITERATIONS, rng=13, workers=workers,
    )
    sharded_seconds = time.perf_counter() - start

    for sigma in SIGMAS:
        assert np.array_equal(serial.accuracy_samples[sigma], sharded.accuracy_samples[sigma])
    print(
        f"bit-identical samples confirmed; serial {serial_seconds:.1f}s, "
        f"{workers} workers {sharded_seconds:.1f}s"
    )

    print()
    print(sharded.report())


if __name__ == "__main__":
    main()
