"""Quickstart: build an MZI mesh, perturb it, and measure the damage.

This script walks through the paper's hierarchy on a tiny example:

1. component level  — an imperfect phase shifter and beam splitter,
2. device level     — the MZI transfer matrix and its sensitivity,
3. layer level      — a 5x5 unitary compiled onto a Clements mesh,
                      perturbed with Gaussian uncertainties, scored by RVD,
4. system level     — pointers to the full SPNN experiments (see the other
                      examples and the `spnn-repro` CLI).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import rvd
from repro.mesh import MZIMesh
from repro.photonics import MZI, BeamSplitter, PhaseShifter, mzi_element_relative_deviation
from repro.utils import random_unitary
from repro.variation import UncertaintyModel, sample_mesh_perturbation


def component_level() -> None:
    print("=== component level ===")
    shifter = PhaseShifter(phase=np.pi / 2)
    print(f"phase shifter tuned to pi/2 needs a heater drive of {shifter.drive_temperature:.2f} K")
    imperfect = BeamSplitter.from_reflectance_error(0.02)
    print(f"imperfect splitter: r = {imperfect.r00:.4f} (ideal 0.7071), power split {imperfect.splitting_ratio:.3f}")


def device_level() -> None:
    print("\n=== device level ===")
    device = MZI.from_angles(theta=1.2, phi=0.7)
    print("ideal MZI power transmission:\n", np.round(device.power_transmission(), 3))
    faulty = device.with_variations(delta_theta=0.2, delta_phi=-0.1, delta_r_in=0.02, delta_r_out=-0.02)
    print("faulty MZI power transmission:\n", np.round(faulty.power_transmission(), 3))
    sensitivity = mzi_element_relative_deviation(1.2, 0.7, k=0.05)
    print("relative element sensitivity |dT|/|T| at K=0.05:\n", np.round(sensitivity, 3))


def layer_level() -> None:
    print("\n=== layer level ===")
    unitary = random_unitary(5, rng=42)
    mesh = MZIMesh.from_unitary(unitary, scheme="clements")
    print(f"compiled a 5x5 unitary onto {mesh.num_mzis} MZIs in {mesh.num_columns} columns")
    print(f"nominal reconstruction error: {np.max(np.abs(mesh.ideal_matrix() - unitary)):.2e}")

    model = UncertaintyModel.both(0.05)  # sigma_PhS = sigma_BeS = 0.05, as in Fig. 3
    rvd_values = []
    for seed in range(200):
        perturbation = sample_mesh_perturbation(mesh, model, rng=seed)
        rvd_values.append(rvd(mesh.matrix(perturbation), unitary))
    print(f"mean RVD over 200 Monte Carlo draws at sigma = 0.05: {np.mean(rvd_values):.3f}")


def system_level_pointer() -> None:
    print("\n=== system level ===")
    print("Train and study the full 16-16-16-10 SPNN with:")
    print("  python examples/global_uncertainty_study.py      (Fig. 4 / EXP 1)")
    print("  python examples/zonal_criticality_study.py       (Fig. 5 / EXP 2)")
    print("  spnn-repro exp1 --smoke                           (CLI)")


if __name__ == "__main__":
    component_level()
    device_level()
    layer_level()
    system_level_pointer()
