"""Drift and online recalibration: serving a silicon-photonic NN over time.

The paper's Monte Carlo studies freeze each fabricated device at its
fabrication draw.  This walkthrough extends that picture along the *time*
axis with the perturbation-process layer (:mod:`repro.variation.process`):

1. pick a temporal process — Ornstein–Uhlenbeck thermal drift here, with
   random-walk aging as a comparison — seeded through the same
   ``spawn_rngs`` discipline as every Monte Carlo run in the repo;
2. advance a fleet of independent device timelines with
   :func:`repro.analysis.timeline.timeline_sweep`, serving the test set at
   every step (chunks shard across worker processes bit-identically);
3. re-run the *same seed* under a
   :class:`repro.analysis.recalibration.RecalibrationPolicy` (scheduled
   re-nulling), so the paired curves isolate exactly what maintenance buys;
4. price the policy with the measured warm-retune cost of one
   recalibration event (:func:`repro.analysis.recalibration.
   measure_renull_cost`).

Run::

    PYTHONPATH=src python examples/drift_recalibration.py [--smoke] [--workers N]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.analysis.recalibration import RecalibrationPolicy, measure_renull_cost  # noqa: E402
from repro.analysis.timeline import timeline_sweep  # noqa: E402
from repro.onn import SPNNTrainingConfig, build_trained_spnn  # noqa: E402
from repro.variation import UncertaintyModel, build_process  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, fast configuration")
    parser.add_argument(
        "--workers", type=int, default=None, help="shard timeline chunks over N processes"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        training = SPNNTrainingConfig(num_train=600, num_test=200, epochs=20)
        num_steps, timelines = 12, 8
    else:
        training = SPNNTrainingConfig()
        num_steps, timelines = 60, 100

    print("[drift example] training + compiling the SPNN ...")
    task = build_trained_spnn(training)
    print(f"[drift example] nominal hardware accuracy: {100 * task.baseline_accuracy:.2f}%")

    # Phase-only uncertainty: re-nulling compensates tunable phases, so the
    # policy can recover everything the drift took (splitter errors would
    # leave an uncompensatable floor — try case 'both' to see it).
    model = UncertaintyModel.phase_only(0.05)
    process = build_process("ou", correlation_time=10.0)
    sweep = dict(
        model=model,
        process=process,
        num_steps=num_steps,
        timelines=timelines,
        rng=17,
        workers=args.workers,
    )

    print(f"[drift example] {timelines} timelines x {num_steps} steps, no maintenance ...")
    baseline = timeline_sweep(task.spnn, task.test_features, task.test_labels, **sweep)

    policy = RecalibrationPolicy(every=max(2, num_steps // 6))
    print(f"[drift example] same seed under {policy} ...")
    recal = timeline_sweep(
        task.spnn, task.test_features, task.test_labels, policy=policy, **sweep
    )
    # Re-nulling consumes no randomness, so both runs saw identical drift
    # trajectories — the curve difference is purely the policy's effect.
    assert np.array_equal(baseline.recalibrations.sum(), 0)

    print()
    print(recal.report())
    print()
    recovered = recal.mean_served_accuracy - baseline.mean_served_accuracy
    print(
        f"[drift example] mean served accuracy {100 * recal.mean_served_accuracy:.2f}% "
        f"with recalibration vs {100 * baseline.mean_served_accuracy:.2f}% without "
        f"(+{100 * recovered:.2f} points)"
    )

    cost = measure_renull_cost(task.spnn.photonic_layers, repeats=2)
    print()
    print(cost.report())
    downtime = recal.recalibrations_per_timeline * cost.warm_seconds
    print(
        f"[drift example] policy budget: {recal.recalibrations_per_timeline:.2f} re-nulls "
        f"per timeline x {1e3 * cost.warm_seconds:.2f} ms = {1e3 * downtime:.2f} ms downtime"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
