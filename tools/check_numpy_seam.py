#!/usr/bin/env python
"""Import-lint for the array seam: keep core numerics off direct NumPy compute.

Two ratcheting rules, enforced in CI (via ``tests/test_numpy_seam_lint.py``)
and runnable standalone::

    python tools/check_numpy_seam.py

1. **Numpy-free modules** (:data:`NUMPY_FREE_MODULES`): the namespace-generic
   kernels must not import NumPy at all — their only array API is the ``xp``
   namespace they receive.  Grow this list as more modules shed their NumPy
   dependency.

2. **Seam modules** (:data:`SEAM_MODULES`): the core numerics modules may
   import NumPy for host-side bookkeeping (dtypes, validation, allocation),
   but calling a *compute* function (:data:`DENIED_COMPUTE`) through it is
   forbidden unless the line carries a ``host-only`` pragma comment — those
   lines are the documented scalar/bookkeeping paths that never see device
   arrays.  Everything outside the two lists (I/O, serialization, plotting,
   the software-training stack) is allowlisted by omission.

A stray ``np.exp``/``np.matmul`` on a batched hot path would break every
device backend; the strict mock namespace catches that at runtime, this
check catches it statically — before any device test runs.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

#: Modules that must not import NumPy at all (rule 1).
NUMPY_FREE_MODULES: Tuple[str, ...] = (
    "repro/arrays/kernels.py",
    # The column-sweep kernel registry and its fused numpy/device path;
    # the numba/cupy wrapper modules (numba_sweep.py, cupy_sweep.py) are
    # host-only accelerator glue that legitimately imports numpy and is
    # deliberately outside both lists.
    "repro/arrays/sweep.py",
    # The observability package: imported by the numpy-free kernel
    # registry (dispatch metrics) and by worker processes (chunk frames);
    # telemetry must never drag a host array library in, and only ever
    # touches array metadata (nbytes), never contents.
    "repro/observability/__init__.py",
    "repro/observability/dispatch.py",
    "repro/observability/frames.py",
    "repro/observability/progress.py",
    "repro/observability/recorder.py",
    "repro/observability/report.py",
    # The fleet transport/coordination layer moves opaque pickled payloads
    # between processes; it reads array metadata (nbytes, dtype.str) for
    # hashing and accounting but must never compute on contents — the
    # numerics always arrive via the pickled evaluator.
    "repro/execution/fleet/__init__.py",
    "repro/execution/fleet/backend.py",
    "repro/execution/fleet/cache.py",
    "repro/execution/fleet/protocol.py",
    "repro/execution/fleet/server.py",
    "repro/execution/fleet/synthetic.py",
    "repro/execution/fleet/worker.py",
    # The autotuning cost model and dispatch policy are consulted from the
    # numpy-free kernel registry on every hinted dispatch; they are dicts,
    # floats and JSON only.  The measurement side (calibrate.py) builds
    # real meshes and is a seam module instead.
    "repro/tuning/__init__.py",
    "repro/tuning/costmodel.py",
    "repro/tuning/policy.py",
)

#: Core numerics modules riding on the array seam (rule 2).
SEAM_MODULES: Tuple[str, ...] = (
    "repro/mesh/_batch.py",
    "repro/mesh/mesh.py",
    "repro/mesh/diagonal.py",
    "repro/mesh/svd_layer.py",
    "repro/photonics/mzi.py",
    "repro/variation/sampler.py",
    "repro/variation/process.py",
    "repro/onn/spnn.py",
    "repro/training/workspace.py",
    "repro/analysis/monte_carlo.py",
    "repro/analysis/timeline.py",
    "repro/analysis/recalibration.py",
    # The calibration micro-benchmark: allocates through the backend and
    # times apply_column_sweep — it must never compute on arrays itself.
    "repro/tuning/calibrate.py",
)

#: NumPy compute functions that must go through ``xp`` on seam modules.
DENIED_COMPUTE = frozenset(
    {
        "matmul",
        "exp",
        "expm1",
        "log",
        "log1p",
        "cos",
        "sin",
        "tan",
        "sqrt",
        "clip",
        "minimum",
        "maximum",
        "where",
        "argmax",
        "argmin",
        "abs",
        "absolute",
        "multiply",
        "mean",
    }
)

#: Pragma marking a documented host-only line (scalar paths, set-point
#: tuning, masking helpers) exempt from rule 2.
HOST_ONLY_PRAGMA = "host-only"


def _numpy_aliases(tree: ast.Module) -> set:
    """Names the module binds to the ``numpy`` package (``np`` usually)."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    aliases.add((alias.asname or alias.name).split(".")[0])
    return aliases


def check_numpy_free(path: Path) -> List[str]:
    tree = ast.parse(path.read_text())
    problems = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    problems.append(f"{path}:{node.lineno}: imports numpy ({alias.name})")
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "numpy":
                problems.append(f"{path}:{node.lineno}: imports from numpy ({node.module})")
    return problems


def check_seam_module(path: Path) -> List[str]:
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source)
    aliases = _numpy_aliases(tree)
    if not aliases:
        return []
    problems = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in aliases
            and node.attr in DENIED_COMPUTE
        ):
            continue
        line = lines[node.lineno - 1]
        if HOST_ONLY_PRAGMA in line:
            continue
        problems.append(
            f"{path}:{node.lineno}: {node.value.id}.{node.attr} on a seam module — "
            f"route it through the xp namespace, or mark the line '# {HOST_ONLY_PRAGMA}'"
        )
    return problems


def run_checks() -> List[str]:
    problems: List[str] = []
    for relative in NUMPY_FREE_MODULES:
        problems.extend(check_numpy_free(SRC_ROOT / relative))
    for relative in SEAM_MODULES:
        problems.extend(check_seam_module(SRC_ROOT / relative))
    return problems


def main() -> int:
    problems = run_checks()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"\n{len(problems)} numpy-seam violation(s)", file=sys.stderr)
        return 1
    total = len(NUMPY_FREE_MODULES) + len(SEAM_MODULES)
    print(f"numpy seam clean across {total} core modules")
    return 0


if __name__ == "__main__":
    sys.exit(main())
